package textsim

import (
	"fmt"
	"reflect"
	"testing"
)

// corpusTexts generates a deterministic document set with enough token
// overlap that RankPairs surfaces pairs at several distinct scores.
func corpusTexts(n int) []string {
	subjects := []string{"processor", "cache", "counter", "controller", "interface"}
	verbs := []string{"may hang", "may report wrong values", "might stall", "may drop packets"}
	conds := []string{"during power state transitions", "under heavy load", "when an overflow occurs", "in rare circumstances"}
	texts := make([]string, n)
	for i := range texts {
		texts[i] = fmt.Sprintf("%s %s %s",
			subjects[i%len(subjects)], verbs[(i/2)%len(verbs)], conds[(i/3)%len(conds)])
	}
	return texts
}

// TestCorpusParallelEquivalence pins the determinism contract of the
// parallel TF-IDF build: the model and the pair ranking are identical
// at every worker count.
func TestCorpusParallelEquivalence(t *testing.T) {
	texts := corpusTexts(40)
	seq := NewCorpusParallel(texts, 1)
	for _, workers := range []int{0, 2, 8} {
		par := NewCorpusParallel(texts, workers)
		if !reflect.DeepEqual(seq.df, par.df) {
			t.Fatalf("workers=%d: document frequencies differ", workers)
		}
		if !reflect.DeepEqual(seq.vecs, par.vecs) {
			t.Fatalf("workers=%d: TF-IDF vectors differ", workers)
		}
		for _, min := range []float64{0, 0.3, 0.9} {
			if !reflect.DeepEqual(seq.RankPairsParallel(min, 1), par.RankPairsParallel(min, workers)) {
				t.Fatalf("workers=%d min=%v: pair rankings differ", workers, min)
			}
		}
	}
}
