// Package textsim provides the text primitives RemembERR's duplicate
// detection relies on: title normalization, tokenization, and several
// string-similarity metrics (Jaccard, Sørensen-Dice, Levenshtein,
// TF-IDF cosine, n-gram shingles).
//
// The paper detects Intel cross-generation duplicates by (nearly)
// identical titles, then manually reviews remaining candidates sorted by
// decreasing title similarity. These metrics implement that ranking.
package textsim

import (
	"math"
	"sort"
	"strings"
	"unicode"

	"repro/internal/parallel"
)

// Normalize lower-cases s, strips punctuation, and collapses whitespace,
// so that titles differing only in minor phrasing normalize identically.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := true
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			prevSpace = false
		default:
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// Tokens splits s into normalized word tokens.
func Tokens(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Fields(n)
}

// tokenSet returns the set of distinct tokens of s.
func tokenSet(s string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, t := range Tokens(s) {
		set[t] = struct{}{}
	}
	return set
}

// Jaccard returns the Jaccard similarity of the token sets of a and b
// in [0,1]. Two empty strings are considered identical (1).
func Jaccard(a, b string) float64 {
	sa, sb := tokenSet(a), tokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Dice returns the Sørensen-Dice coefficient of the token sets of a and
// b in [0,1].
func Dice(a, b string) float64 {
	sa, sb := tokenSet(a), tokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	den := len(sa) + len(sb)
	if den == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(den)
}

// Levenshtein returns the edit distance between the normalized forms of
// a and b, counting insertions, deletions and substitutions as 1.
func Levenshtein(a, b string) int {
	return levenshteinRunes([]rune(Normalize(a)), []rune(Normalize(b)))
}

// levenshteinRunes is the edit-distance kernel over already-normalized
// rune slices, so that callers holding normalized text (the dedup
// candidate-scoring hot loop via LevenshteinSimilarity) pay for
// normalization exactly once.
func levenshteinRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSimilarity maps the edit distance to a similarity in [0,1]:
// 1 - dist/maxLen. Two empty strings are identical.
func LevenshteinSimilarity(a, b string) float64 {
	ra, rb := []rune(Normalize(a)), []rune(Normalize(b))
	maxLen := len(ra)
	if len(rb) > maxLen {
		maxLen = len(rb)
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(levenshteinRunes(ra, rb))/float64(maxLen)
}

func minInt(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Shingles returns the set of n-grams (as strings of n consecutive
// tokens joined by a space) of s. For fewer than n tokens, the whole
// token sequence is the single shingle.
func Shingles(s string, n int) map[string]struct{} {
	toks := Tokens(s)
	out := make(map[string]struct{})
	if len(toks) == 0 || n <= 0 {
		return out
	}
	if len(toks) < n {
		out[strings.Join(toks, " ")] = struct{}{}
		return out
	}
	for i := 0; i+n <= len(toks); i++ {
		out[strings.Join(toks[i:i+n], " ")] = struct{}{}
	}
	return out
}

// ShingleJaccard returns the Jaccard similarity of the n-gram shingle
// sets of a and b.
func ShingleJaccard(a, b string, n int) float64 {
	sa, sb := Shingles(a, n), Shingles(b, n)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Corpus supports TF-IDF cosine similarity over a document collection.
// Build one with NewCorpus; it is immutable afterwards.
type Corpus struct {
	df     map[string]int
	nDocs  int
	vecs   []map[string]float64
	titles []string
}

// NewCorpus builds a TF-IDF model over the given texts using all
// available CPUs; see NewCorpusParallel for the worker knob.
func NewCorpus(texts []string) *Corpus {
	return NewCorpusParallel(texts, 0)
}

// NewCorpusParallel builds a TF-IDF model over the given texts with a
// bounded worker pool (0 = GOMAXPROCS, 1 = sequential). Per-document
// tokenization and vectorization are embarrassingly parallel; the
// document-frequency accumulation between them is a cheap sequential
// reduction over per-document sets, so the model is identical at every
// worker count.
func NewCorpusParallel(texts []string, workers int) *Corpus {
	c := &Corpus{
		df:     make(map[string]int),
		nDocs:  len(texts),
		titles: append([]string(nil), texts...),
	}
	tfs, _ := parallel.Map(len(texts), workers, func(i int) (map[string]int, error) {
		tf := make(map[string]int)
		for _, tok := range Tokens(texts[i]) {
			tf[tok]++
		}
		return tf, nil
	})
	for _, tf := range tfs {
		for tok := range tf {
			c.df[tok]++
		}
	}
	c.vecs = make([]map[string]float64, len(texts))
	_ = parallel.Do(len(texts), workers, func(i int) error {
		tf := tfs[i]
		// Accumulate the norm in sorted token order: float addition is
		// not associative, and map iteration order is randomized per
		// run, so a fixed summation order is what makes the vectors
		// reproducible run to run.
		toks := make([]string, 0, len(tf))
		for tok := range tf {
			toks = append(toks, tok)
		}
		sort.Strings(toks)
		vec := make(map[string]float64, len(tf))
		var norm float64
		for _, tok := range toks {
			w := float64(tf[tok]) * c.idf(tok)
			vec[tok] = w
			norm += w * w
		}
		if norm > 0 {
			norm = math.Sqrt(norm)
			for tok := range vec {
				vec[tok] /= norm
			}
		}
		c.vecs[i] = vec
		return nil
	})
	return c
}

func (c *Corpus) idf(tok string) float64 {
	df := c.df[tok]
	if df == 0 {
		df = 1
	}
	return math.Log(float64(c.nDocs+1)/float64(df)) + 1
}

// Len returns the number of documents in the corpus.
func (c *Corpus) Len() int { return c.nDocs }

// Cosine returns the TF-IDF cosine similarity between documents i and j.
func (c *Corpus) Cosine(i, j int) float64 {
	vi, vj := c.vecs[i], c.vecs[j]
	if len(vi) > len(vj) {
		vi, vj = vj, vi
	}
	// Sum the dot product in sorted token order so the score is
	// reproducible run to run (see NewCorpusParallel).
	toks := make([]string, 0, len(vi))
	for tok := range vi {
		if _, ok := vj[tok]; ok {
			toks = append(toks, tok)
		}
	}
	sort.Strings(toks)
	var dot float64
	for _, tok := range toks {
		dot += vi[tok] * vj[tok]
	}
	if dot > 1 {
		dot = 1 // guard against rounding
	}
	return dot
}

// Pair is a scored candidate pair of corpus documents.
type Pair struct {
	I, J  int
	Score float64
}

// RankPairs returns all pairs (i<j) with similarity of at least min,
// sorted by decreasing score (stable for equal scores by (I,J)). This
// mirrors the paper's manual review of candidate duplicates "sorted by
// decreasing title similarity". It uses all available CPUs; see
// RankPairsParallel for the worker knob.
func (c *Corpus) RankPairs(min float64) []Pair {
	return c.RankPairsParallel(min, 0)
}

// RankPairsParallel is RankPairs with a bounded worker pool (0 =
// GOMAXPROCS, 1 = sequential). The O(n^2) scan is sharded by row;
// per-row matches are merged in row order, so the pre-sort order — and
// with the total (score, I, J) ordering, the final ranking — is
// identical to the sequential scan at every worker count.
func (c *Corpus) RankPairsParallel(min float64, workers int) []Pair {
	out := parallel.Gather(c.nDocs, workers, func(i int) []Pair {
		var row []Pair
		for j := i + 1; j < c.nDocs; j++ {
			if s := c.Cosine(i, j); s >= min {
				row = append(row, Pair{I: i, J: j, Score: s})
			}
		}
		return row
	})
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// Metric names a similarity function usable for duplicate ranking; used
// by the ablation benchmarks.
type Metric string

// Supported similarity metrics.
const (
	MetricJaccard     Metric = "jaccard"
	MetricDice        Metric = "dice"
	MetricLevenshtein Metric = "levenshtein"
	MetricShingle2    Metric = "shingle2"
)

// Similarity computes the named metric on a pair of strings. Unknown
// metrics fall back to Jaccard.
func Similarity(m Metric, a, b string) float64 {
	switch m {
	case MetricDice:
		return Dice(a, b)
	case MetricLevenshtein:
		return LevenshteinSimilarity(a, b)
	case MetricShingle2:
		return ShingleJaccard(a, b, 2)
	default:
		return Jaccard(a, b)
	}
}
