package archtest

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the API snapshot")

// TestExportedAPISnapshot pins the exported surface of every pkg/
// package against a golden file. Plugins and external consumers build
// against these identifiers; any addition, removal or signature change
// must be deliberate — regenerate with -update and review the diff,
// and remember that a breaking change to pkg/pluginapi types requires
// an APIVersion bump.
func TestExportedAPISnapshot(t *testing.T) {
	root := repoRoot(t)
	var lines []string
	for _, rel := range sourceFiles(t, root, "pkg") {
		pkgDir := filepath.ToSlash(filepath.Dir(rel))
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, filepath.Join(root, rel), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			lines = append(lines, declLines(t, fset, pkgDir, decl)...)
		}
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "api.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("exported pkg/ API differs from %s; run with -update only for a deliberate API change.\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// declLines renders the exported surface of one top-level declaration,
// one line per identifier, prefixed with the package directory.
func declLines(t *testing.T, fset *token.FileSet, pkgDir string, decl ast.Decl) []string {
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, pkgDir+": "+fmt.Sprintf(format, args...))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil && !ast.IsExported(receiverTypeName(d.Recv)) {
			return nil
		}
		d.Body = nil
		add("%s", render(t, fset, d))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				stripUnexported(s.Type)
				add("type %s", render(t, fset, s))
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() {
						add("%s %s", strings.ToLower(d.Tok.String()), name.Name)
					}
				}
			}
		}
	}
	return lines
}

func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	expr := recv.List[0].Type
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// stripUnexported drops unexported fields from struct types and
// unexported methods from interface types, in place, so the snapshot
// pins only the public surface.
func stripUnexported(expr ast.Expr) {
	fields := func(list *ast.FieldList) {
		if list == nil {
			return
		}
		kept := list.List[:0]
		for _, f := range list.List {
			if len(f.Names) == 0 {
				kept = append(kept, f) // embedded: the type name decides visibility
				continue
			}
			names := f.Names[:0]
			for _, n := range f.Names {
				if n.IsExported() {
					names = append(names, n)
				}
			}
			if len(names) > 0 {
				f.Names = names
				kept = append(kept, f)
			}
		}
		list.List = kept
	}
	switch typ := expr.(type) {
	case *ast.StructType:
		fields(typ.Fields)
	case *ast.InterfaceType:
		fields(typ.Methods)
	}
}

// render prints a node on a single line with whitespace runs collapsed.
func render(t *testing.T, fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		t.Fatal(err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
