// Package archtest enforces the hexagonal layering rules of the
// repository with AST-level checks, so a violating import fails CI
// rather than surviving as an unnoticed architecture leak:
//
//   - pkg/ and plugins/ must not import internal/ — the public
//     contracts and the plugins written against them must stand alone.
//     The single sanctioned exception is pkg/storage, whose drivers
//     adapt internal/store.
//   - internal/ must not import plugins/ — implementations depend on
//     the plugin contract, never on concrete plugin packages. (Test
//     files are exempt: test binaries are composition roots and may
//     register the default plugins.)
//
// The exported surface of pkg/ is additionally pinned by a golden
// snapshot (see apisnapshot_test.go).
package archtest

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// module is the module path imports are matched against.
const module = "repro"

// internalImportAllowlist maps a package directory (relative to the
// repo root, slash-separated) to the internal imports it alone may
// use.
var internalImportAllowlist = map[string]map[string]bool{
	"pkg/storage": {module + "/internal/store": true},
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}

// sourceFiles returns the non-test .go files under root/dir, as paths
// relative to root (slash-separated).
func sourceFiles(t *testing.T, root, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(filepath.Join(root, dir), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		files = append(files, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func imports(t *testing.T, path string) []string {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	var out []string
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out = append(out, p)
	}
	return out
}

// TestPkgAndPluginsDoNotImportInternal is the outward-facing guard:
// the public contracts (pkg/) and the plugins written against them
// must not reach into internal/, with pkg/storage's store adapters as
// the single allowlisted exception. pkg/ additionally must not import
// plugins/ — contracts never depend on implementations.
func TestPkgAndPluginsDoNotImportInternal(t *testing.T) {
	root := repoRoot(t)
	for _, dir := range []string{"pkg", "plugins"} {
		for _, rel := range sourceFiles(t, root, dir) {
			pkgDir := filepath.ToSlash(filepath.Dir(rel))
			for _, imp := range imports(t, filepath.Join(root, rel)) {
				if imp == module+"/internal" || strings.HasPrefix(imp, module+"/internal/") {
					if internalImportAllowlist[pkgDir][imp] {
						continue
					}
					t.Errorf("%s imports %s: %s/ must not import internal/", rel, imp, dir)
				}
				if dir == "pkg" && (imp == module+"/plugins" || strings.HasPrefix(imp, module+"/plugins/")) {
					t.Errorf("%s imports %s: pkg/ must not import plugins/", rel, imp)
				}
			}
		}
	}
}

// TestInternalDoesNotImportPlugins is the inward-facing guard:
// implementations consume plugins only through the pkg/pluginapi
// registry, never by importing a concrete plugin package. Composition
// roots (the root package, cmd/, examples/ and test binaries) are the
// only places that wire plugins in.
func TestInternalDoesNotImportPlugins(t *testing.T) {
	root := repoRoot(t)
	for _, rel := range sourceFiles(t, root, "internal") {
		for _, imp := range imports(t, filepath.Join(root, rel)) {
			if imp == module+"/plugins" || strings.HasPrefix(imp, module+"/plugins/") {
				t.Errorf("%s imports %s: internal/ must not import plugins/", rel, imp)
			}
		}
	}
}

// TestAllowlistEntriesStillUsed keeps the exception list honest: an
// allowlisted import that no file uses anymore should be deleted, not
// linger as a standing permission.
func TestAllowlistEntriesStillUsed(t *testing.T) {
	root := repoRoot(t)
	for pkgDir, allowed := range internalImportAllowlist {
		used := map[string]bool{}
		for _, rel := range sourceFiles(t, root, pkgDir) {
			for _, imp := range imports(t, filepath.Join(root, rel)) {
				used[imp] = true
			}
		}
		for imp := range allowed {
			if !used[imp] {
				t.Errorf("allowlist entry %s -> %s is unused; remove it", pkgDir, imp)
			}
		}
	}
}
