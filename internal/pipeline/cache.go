package pipeline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Meta is the sidecar metadata stored with each cache entry.
type Meta struct {
	// Digest is the sha256 of the artifact bytes, hex-encoded. Reads
	// verify it, so a corrupted object degrades to a cache miss rather
	// than poisoning a build.
	Digest string `json:"digest"`
	// Items is the stage's reported item count, replayed onto the span
	// of a cached stage.
	Items int `json:"items,omitempty"`
	// Bytes is the artifact size.
	Bytes int `json:"bytes"`
}

// Cache stores encoded stage artifacts under content-addressed keys.
// Implementations must be safe for sequential use by one Runner;
// DiskCache additionally tolerates concurrent builds sharing one
// directory (writes are temp-file+rename atomic).
type Cache interface {
	// Get returns the artifact bytes for key. A missing, unreadable, or
	// corrupt entry reports ok=false — cache trouble is never a build
	// error on the read path.
	Get(key string) (raw []byte, meta Meta, ok bool)
	// Put stores the artifact under key.
	Put(key string, raw []byte, meta Meta) error
}

// DiskCache is a two-level on-disk cache:
//
//	dir/objects/<digest>  artifact bytes, named by their own sha256
//	dir/keys/<cachekey>   JSON Meta pointing at the object
//
// Separating keys from objects means a stage that re-runs under a new
// key but produces identical bytes stores nothing new (and downstream
// keys, chained on the digest, still hit).
type DiskCache struct {
	dir string
}

// NewDiskCache opens (creating if needed) a cache rooted at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	for _, sub := range []string{"objects", "keys"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("pipeline: create cache dir: %w", err)
		}
	}
	return &DiskCache{dir: dir}, nil
}

func (c *DiskCache) keyPath(key string) string {
	return filepath.Join(c.dir, "keys", sanitize(key))
}

func (c *DiskCache) objectPath(digest string) string {
	return filepath.Join(c.dir, "objects", sanitize(digest))
}

// sanitize keeps cache file names to a safe hex-ish alphabet; keys and
// digests are hex already, this is defense against future key schemes.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, s)
}

func (c *DiskCache) Get(key string) ([]byte, Meta, bool) {
	var meta Meta
	mb, err := os.ReadFile(c.keyPath(key))
	if err != nil || json.Unmarshal(mb, &meta) != nil || meta.Digest == "" {
		return nil, Meta{}, false
	}
	raw, err := os.ReadFile(c.objectPath(meta.Digest))
	if err != nil || digestOf(raw) != meta.Digest {
		return nil, Meta{}, false
	}
	return raw, meta, true
}

func (c *DiskCache) Put(key string, raw []byte, meta Meta) error {
	// Always rewrite the object (atomically): skipping an existing file
	// would preserve a corrupted object forever, and warm builds never
	// reach Put anyway.
	if err := writeAtomic(c.objectPath(meta.Digest), raw); err != nil {
		return err
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	return writeAtomic(c.keyPath(key), mb)
}

// writeAtomic writes via a temp file in the same directory plus rename,
// so concurrent builds sharing a cache never observe partial entries.
func writeAtomic(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// MemCache is an in-memory Cache for tests.
type MemCache struct {
	mu      sync.Mutex
	objects map[string][]byte
	keys    map[string]Meta
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache {
	return &MemCache{objects: make(map[string][]byte), keys: make(map[string]Meta)}
}

func (c *MemCache) Get(key string) ([]byte, Meta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	meta, ok := c.keys[key]
	if !ok {
		return nil, Meta{}, false
	}
	raw, ok := c.objects[meta.Digest]
	if !ok || digestOf(raw) != meta.Digest {
		return nil, Meta{}, false
	}
	return raw, meta, true
}

func (c *MemCache) Put(key string, raw []byte, meta Meta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.objects[meta.Digest] = append([]byte(nil), raw...)
	c.keys[key] = meta
	return nil
}
