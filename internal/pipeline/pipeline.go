// Package pipeline runs a directed acyclic graph of named build stages
// with content-addressed memoization.
//
// Each Stage declares its inputs (by stage id), a code-version string,
// a config fingerprint, and a pure Run function. The Runner executes
// the stages in dependency order; when a Cache is attached, every
// stage's output artifact is encoded deterministically and stored under
// a cache key derived from
//
//	sha256("pipeline/v1\n" + id + "\n" + version + "\n" + config +
//	       "\n" + digest(input_1) + ... + digest(input_n))
//
// so a warm rebuild replays every stage whose key is unchanged straight
// from disk and re-runs only the affected suffix of the graph. Because
// keys chain through input *artifact* digests rather than through
// "did my input re-run", a stage that re-runs but produces identical
// bytes still lets everything downstream hit (early cutoff).
//
// The runner is deliberately sequential: stages themselves parallelize
// internally (via internal/parallel), and the byte-identity contract of
// the build — same output at every worker count — is much easier to
// audit when stage order is fixed. With a nil Cache the runner adds no
// hashing or encoding work; the cold path stays the plain function
// composition it always was.
package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"repro/internal/obs"
)

// Stage is one node of the build graph. Stages must be pure up to their
// declared Config: given the same input artifacts and config they must
// produce byte-identical encoded output. A stage may take ownership of
// its in-memory input values (the build stages mutate a shared database
// in place, monolith-style); the runner encodes every artifact before
// the next stage runs, so the cached bytes are immune to later
// mutation.
type Stage struct {
	// ID names the stage; it is the span name and the metric label.
	ID string
	// Version is a hand-bumped code-version string. Bump it whenever
	// the stage's implementation changes observable output, so stale
	// cache entries are never replayed.
	Version string
	// Inputs are the ids of the stages whose outputs this stage
	// consumes, in the order Ctx.Input expects them.
	Inputs []string
	// Config is a deterministic fingerprint of every knob that affects
	// the stage's output. Parallelism is deliberately excluded: the
	// build contract is byte-identical output at every worker count.
	Config string
	// Run computes the stage's value from its inputs.
	Run func(*Ctx) (any, error)
	// Encode serializes the value deterministically for the cache.
	Encode func(any) ([]byte, error)
	// Decode revives a cached artifact.
	Decode func([]byte) (any, error)
}

// Ctx is handed to Stage.Run.
type Ctx struct {
	runner *Runner
	stage  *Stage
	inputs []*artifact
	span   *obs.Span
	items  int
}

// Input returns the materialized value of the i'th declared input.
func (c *Ctx) Input(i int) (any, error) {
	return c.inputs[i].value(c.runner)
}

// SetItems records the stage's item count on its span and in the cache
// metadata, so cached replays report the same count.
func (c *Ctx) SetItems(n int) {
	c.items = n
	c.span.SetItems(n)
}

// Span returns the stage's span, for stages that record child spans.
func (c *Ctx) Span() *obs.Span {
	return c.span
}

// artifact is one stage's output: the live value when the stage ran (or
// has been materialized), plus the encoded bytes and their digest when
// a cache is attached. Cached stages stay as undecoded bytes until a
// downstream consumer asks for the value.
type artifact struct {
	stage   *Stage
	val     any
	haveVal bool
	raw     []byte // encoded bytes; nil when no cache is attached
	digest  string
	items   int
	cached  bool
}

func (a *artifact) value(r *Runner) (any, error) {
	if !a.haveVal {
		v, err := a.stage.Decode(a.raw)
		if err != nil {
			return nil, fmt.Errorf("pipeline: decode cached %s artifact: %w", a.stage.ID, err)
		}
		a.val = v
		a.haveVal = true
	}
	return a.val, nil
}

// Runner executes stage graphs. Cache and Obs are both optional; the
// zero Runner is a plain sequential executor.
type Runner struct {
	// Cache, when non-nil, memoizes stage outputs across runs.
	Cache Cache
	// Obs receives cache-hit/miss counters, artifact-size gauges, and
	// the per-stage spans. May be nil.
	Obs *obs.Registry
}

// Result is one finished run: the root span and every stage's artifact.
type Result struct {
	// Trace is the root span; each stage is one child, in execution
	// order, with Cached set on replayed stages.
	Trace *obs.Span

	runner    *Runner
	artifacts map[string]*artifact
}

// Value materializes and returns the output of stage id.
func (r *Result) Value(id string) (any, error) {
	a, ok := r.artifacts[id]
	if !ok {
		return nil, fmt.Errorf("pipeline: no stage %q in result", id)
	}
	return a.value(r.runner)
}

// Cached reports whether stage id was replayed from the cache.
func (r *Result) Cached(id string) bool {
	a, ok := r.artifacts[id]
	return ok && a.cached
}

// Digest returns the content digest of stage id's encoded artifact
// (empty when the run had no cache attached).
func (r *Result) Digest(id string) string {
	a, ok := r.artifacts[id]
	if !ok {
		return ""
	}
	return a.digest
}

// sort orders stages topologically, stable in declaration order (Kahn's
// algorithm taking the earliest-declared ready stage first).
func sortStages(stages []*Stage) ([]*Stage, error) {
	byID := make(map[string]*Stage, len(stages))
	for _, s := range stages {
		if s.ID == "" {
			return nil, fmt.Errorf("pipeline: stage with empty id")
		}
		if _, dup := byID[s.ID]; dup {
			return nil, fmt.Errorf("pipeline: duplicate stage id %q", s.ID)
		}
		byID[s.ID] = s
	}
	indeg := make(map[string]int, len(stages))
	for _, s := range stages {
		for _, in := range s.Inputs {
			if _, ok := byID[in]; !ok {
				return nil, fmt.Errorf("pipeline: stage %q depends on unknown stage %q", s.ID, in)
			}
			indeg[s.ID]++
		}
	}
	order := make([]*Stage, 0, len(stages))
	done := make(map[string]bool, len(stages))
	for len(order) < len(stages) {
		progressed := false
		for _, s := range stages {
			if done[s.ID] || indeg[s.ID] > 0 {
				continue
			}
			order = append(order, s)
			done[s.ID] = true
			progressed = true
			for _, t := range stages {
				for _, in := range t.Inputs {
					if in == s.ID {
						indeg[t.ID]--
					}
				}
			}
		}
		if !progressed {
			return nil, fmt.Errorf("pipeline: dependency cycle among stages")
		}
	}
	return order, nil
}

// cacheKey derives the content-addressed key for one stage execution.
func cacheKey(s *Stage, inputs []*artifact) string {
	h := sha256.New()
	fmt.Fprintf(h, "pipeline/v1\n%s\n%s\n%s\n", s.ID, s.Version, s.Config)
	for _, in := range inputs {
		fmt.Fprintf(h, "%s\n", in.digest)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func digestOf(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Run executes the graph and returns the per-stage artifacts under a
// root span named rootName. Stage errors are returned as-is (stages
// wrap their own errors), after ending the open spans so the partial
// trace is still coherent.
func (r *Runner) Run(rootName string, stages []*Stage) (*Result, error) {
	order, err := sortStages(stages)
	if err != nil {
		return nil, err
	}
	root := obs.StartSpan(r.Obs, rootName)
	res := &Result{Trace: root, runner: r, artifacts: make(map[string]*artifact, len(order))}
	defer root.End()

	for _, s := range order {
		inputs := make([]*artifact, len(s.Inputs))
		for i, in := range s.Inputs {
			inputs[i] = res.artifacts[in]
		}
		sp := root.StartChild(s.ID)
		a, err := r.runStage(s, inputs, sp)
		sp.End()
		if err != nil {
			return nil, err
		}
		res.artifacts[s.ID] = a
	}
	return res, nil
}

func (r *Runner) runStage(s *Stage, inputs []*artifact, sp *obs.Span) (*artifact, error) {
	if r.Cache == nil {
		// Cold fast path: no keys, no encoding, no hashing.
		ctx := &Ctx{runner: r, stage: s, inputs: inputs, span: sp}
		v, err := s.Run(ctx)
		if err != nil {
			return nil, err
		}
		return &artifact{stage: s, val: v, haveVal: true, items: ctx.items}, nil
	}

	key := cacheKey(s, inputs)
	if raw, meta, ok := r.Cache.Get(key); ok {
		sp.SetCached(true)
		sp.SetItems(meta.Items)
		r.observe(s.ID, true, len(raw))
		return &artifact{stage: s, raw: raw, digest: meta.Digest, items: meta.Items, cached: true}, nil
	}

	ctx := &Ctx{runner: r, stage: s, inputs: inputs, span: sp}
	v, err := s.Run(ctx)
	if err != nil {
		return nil, err
	}
	raw, err := s.Encode(v)
	if err != nil {
		return nil, fmt.Errorf("pipeline: encode %s artifact: %w", s.ID, err)
	}
	a := &artifact{stage: s, val: v, haveVal: true, raw: raw, digest: digestOf(raw), items: ctx.items}
	if err := r.Cache.Put(key, raw, Meta{Digest: a.digest, Items: a.items, Bytes: len(raw)}); err != nil {
		return nil, fmt.Errorf("pipeline: cache %s artifact: %w", s.ID, err)
	}
	r.observe(s.ID, false, len(raw))
	return a, nil
}

func (r *Runner) observe(stage string, hit bool, size int) {
	if r.Obs == nil {
		return
	}
	if hit {
		r.Obs.Counter("rememberr_pipeline_stage_cache_hits_total",
			"Build stages replayed from the content-addressed pipeline cache.",
			obs.L("stage", stage)).Add(1)
	} else {
		r.Obs.Counter("rememberr_pipeline_stage_cache_misses_total",
			"Build stages executed because no cached artifact matched.",
			obs.L("stage", stage)).Add(1)
	}
	r.Obs.Gauge("rememberr_pipeline_artifact_bytes",
		"Encoded size of each stage's most recent build artifact.",
		obs.L("stage", stage)).Set(float64(size))
}

// Fingerprint joins config knob strings into a stage Config value with
// an unambiguous (length-prefixed) encoding, so adjacent fields can
// never collide by concatenation.
func Fingerprint(parts ...string) string {
	out := make([]byte, 0, 32)
	for _, p := range parts {
		out = strconv.AppendInt(out, int64(len(p)), 10)
		out = append(out, ':')
		out = append(out, p...)
		out = append(out, ';')
	}
	return string(out)
}
