package pipeline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// intStage builds a stage whose artifact is a JSON int. runs and
// decodes count invocations so tests can assert what executed.
func intStage(id, version, config string, inputs []string, fn func(in []int) int, runs, decodes *atomic.Int64) *Stage {
	return &Stage{
		ID:      id,
		Version: version,
		Inputs:  inputs,
		Config:  config,
		Run: func(c *Ctx) (any, error) {
			vals := make([]int, len(inputs))
			for i := range inputs {
				v, err := c.Input(i)
				if err != nil {
					return nil, err
				}
				vals[i] = v.(int)
			}
			if runs != nil {
				runs.Add(1)
			}
			n := fn(vals)
			c.SetItems(n)
			return n, nil
		},
		Encode: func(v any) ([]byte, error) { return json.Marshal(v.(int)) },
		Decode: func(b []byte) (any, error) {
			if decodes != nil {
				decodes.Add(1)
			}
			var n int
			err := json.Unmarshal(b, &n)
			return n, err
		},
	}
}

func chainStages(runs map[string]*atomic.Int64) []*Stage {
	counter := func(id string) *atomic.Int64 {
		if runs == nil {
			return nil
		}
		c := &atomic.Int64{}
		runs[id] = c
		return c
	}
	return []*Stage{
		intStage("a", "v1", "seed=3", nil, func([]int) int { return 3 }, counter("a"), nil),
		intStage("b", "v1", "", []string{"a"}, func(in []int) int { return in[0] * 10 }, counter("b"), nil),
		intStage("c", "v1", "add=7", []string{"b"}, func(in []int) int { return in[0] + 7 }, counter("c"), nil),
	}
}

func TestRunnerNoCache(t *testing.T) {
	runs := map[string]*atomic.Int64{}
	r := &Runner{}
	res, err := r.Run("build", chainStages(runs))
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Value("c")
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 37 {
		t.Fatalf("c = %v, want 37", v)
	}
	for id, c := range runs {
		if c.Load() != 1 {
			t.Errorf("stage %s ran %d times, want 1", id, c.Load())
		}
	}
	if res.Cached("a") || res.Cached("b") || res.Cached("c") {
		t.Error("no-cache run reported cached stages")
	}
	if res.Digest("a") != "" {
		t.Error("no-cache run produced a digest")
	}
	// Trace: root with one child per stage, in order, none cached.
	if res.Trace == nil || res.Trace.Name != "build" {
		t.Fatalf("bad root span: %+v", res.Trace)
	}
	var names []string
	for _, c := range res.Trace.Children {
		names = append(names, c.Name)
		if c.Cached {
			t.Errorf("span %s marked cached", c.Name)
		}
		if c.DurationNS == 0 {
			t.Errorf("span %s not ended", c.Name)
		}
	}
	if got := strings.Join(names, ","); got != "a,b,c" {
		t.Fatalf("span order %q, want a,b,c", got)
	}
	if res.Trace.Children[0].Items != 3 {
		t.Errorf("span a items = %d, want 3", res.Trace.Children[0].Items)
	}
}

func TestRunnerMemoization(t *testing.T) {
	cache := NewMemCache()
	reg := obs.NewRegistry()

	runs1 := map[string]*atomic.Int64{}
	r := &Runner{Cache: cache, Obs: reg}
	if _, err := r.Run("build", chainStages(runs1)); err != nil {
		t.Fatal(err)
	}

	runs2 := map[string]*atomic.Int64{}
	res, err := r.Run("build", chainStages(runs2))
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range runs2 {
		if c.Load() != 0 {
			t.Errorf("warm run executed stage %s", id)
		}
		if !res.Cached(id) {
			t.Errorf("warm run did not report %s cached", id)
		}
	}
	v, err := res.Value("c")
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 37 {
		t.Fatalf("warm c = %v, want 37", v)
	}
	// Spans carry cached flag and replayed item counts.
	for _, sp := range res.Trace.Children {
		if !sp.Cached {
			t.Errorf("warm span %s not marked cached", sp.Name)
		}
	}
	if res.Trace.Children[2].Items != 37 {
		t.Errorf("cached span items = %d, want 37", res.Trace.Children[2].Items)
	}
	if h := reg.Counter("rememberr_pipeline_stage_cache_hits_total", "", obs.L("stage", "c")).Value(); h != 1 {
		t.Errorf("hit counter for c = %v, want 1", h)
	}
	if m := reg.Counter("rememberr_pipeline_stage_cache_misses_total", "", obs.L("stage", "c")).Value(); m != 1 {
		t.Errorf("miss counter for c = %v, want 1", m)
	}
}

// TestRunnerSuffixRerun changes only a downstream knob: the prefix must
// replay from cache and only the suffix re-run.
func TestRunnerSuffixRerun(t *testing.T) {
	cache := NewMemCache()
	r := &Runner{Cache: cache}
	if _, err := r.Run("build", chainStages(nil)); err != nil {
		t.Fatal(err)
	}

	runs := map[string]*atomic.Int64{}
	stages := chainStages(runs)
	stages[2].Config = "add=8"
	stages[2].Run = func(c *Ctx) (any, error) {
		v, err := c.Input(0)
		if err != nil {
			return nil, err
		}
		runs["c"].Add(1)
		return v.(int) + 8, nil
	}
	res, err := r.Run("build", stages)
	if err != nil {
		t.Fatal(err)
	}
	if runs["a"].Load() != 0 || runs["b"].Load() != 0 {
		t.Errorf("prefix re-ran: a=%d b=%d", runs["a"].Load(), runs["b"].Load())
	}
	if runs["c"].Load() != 1 {
		t.Errorf("suffix ran %d times, want 1", runs["c"].Load())
	}
	if !res.Cached("a") || !res.Cached("b") || res.Cached("c") {
		t.Errorf("cached flags: a=%v b=%v c=%v", res.Cached("a"), res.Cached("b"), res.Cached("c"))
	}
	if v, _ := res.Value("c"); v.(int) != 38 {
		t.Fatalf("c = %v, want 38", v)
	}
}

// TestRunnerEarlyCutoff re-runs an upstream stage under a changed
// version; because its bytes are unchanged, downstream keys still hit.
func TestRunnerEarlyCutoff(t *testing.T) {
	cache := NewMemCache()
	r := &Runner{Cache: cache}
	if _, err := r.Run("build", chainStages(nil)); err != nil {
		t.Fatal(err)
	}

	runs := map[string]*atomic.Int64{}
	stages := chainStages(runs)
	stages[0].Version = "v2" // forces stage a to re-run, same output
	res, err := r.Run("build", stages)
	if err != nil {
		t.Fatal(err)
	}
	if runs["a"].Load() != 1 {
		t.Errorf("a ran %d times, want 1", runs["a"].Load())
	}
	if runs["b"].Load() != 0 || runs["c"].Load() != 0 {
		t.Errorf("downstream re-ran despite identical upstream bytes: b=%d c=%d",
			runs["b"].Load(), runs["c"].Load())
	}
	if !res.Cached("b") || !res.Cached("c") {
		t.Error("downstream stages not cached after early cutoff")
	}
}

// TestRunnerLazyDecode: cached artifacts are decoded only when a live
// consumer (or Value) needs them.
func TestRunnerLazyDecode(t *testing.T) {
	cache := NewMemCache()
	var decodes atomic.Int64
	mk := func() []*Stage {
		return []*Stage{
			intStage("a", "v1", "", nil, func([]int) int { return 1 }, nil, &decodes),
			intStage("b", "v1", "", []string{"a"}, func(in []int) int { return in[0] + 1 }, nil, &decodes),
		}
	}
	r := &Runner{Cache: cache}
	if _, err := r.Run("build", mk()); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run("build", mk())
	if err != nil {
		t.Fatal(err)
	}
	if decodes.Load() != 0 {
		t.Fatalf("warm run decoded %d artifacts before any Value call", decodes.Load())
	}
	if _, err := res.Value("b"); err != nil {
		t.Fatal(err)
	}
	if decodes.Load() != 1 {
		t.Fatalf("Value(b) decoded %d artifacts, want exactly 1", decodes.Load())
	}
}

func TestSortStagesErrors(t *testing.T) {
	mk := func(id string, inputs ...string) *Stage {
		return &Stage{ID: id, Inputs: inputs, Run: func(*Ctx) (any, error) { return nil, nil }}
	}
	cases := []struct {
		name   string
		stages []*Stage
		want   string
	}{
		{"unknown input", []*Stage{mk("a", "ghost")}, "unknown stage"},
		{"cycle", []*Stage{mk("a", "b"), mk("b", "a")}, "cycle"},
		{"dup id", []*Stage{mk("a"), mk("a")}, "duplicate"},
		{"empty id", []*Stage{mk("")}, "empty id"},
	}
	for _, tc := range cases {
		if _, err := sortStages(tc.stages); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
	// Declaration order is preserved among ready stages, regardless of
	// declaration position of dependencies.
	order, err := sortStages([]*Stage{mk("z", "a"), mk("m"), mk("a", "m")})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, s := range order {
		ids = append(ids, s.ID)
	}
	if got := strings.Join(ids, ","); got != "m,a,z" {
		t.Fatalf("topo order %q, want m,a,z", got)
	}
}

func TestStageErrorPropagates(t *testing.T) {
	boom := fmt.Errorf("stage exploded")
	stages := []*Stage{{
		ID:     "a",
		Run:    func(*Ctx) (any, error) { return nil, boom },
		Encode: func(any) ([]byte, error) { return nil, nil },
		Decode: func([]byte) (any, error) { return nil, nil },
	}}
	if _, err := (&Runner{}).Run("build", stages); err != boom {
		t.Fatalf("err = %v, want the stage error unchanged", err)
	}
}

func TestDiskCache(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte(`{"hello":"world"}`)
	meta := Meta{Digest: digestOf(raw), Items: 5, Bytes: len(raw)}
	if err := c.Put("somekey", raw, meta); err != nil {
		t.Fatal(err)
	}
	got, m, ok := c.Get("somekey")
	if !ok || string(got) != string(raw) || m.Items != 5 {
		t.Fatalf("Get = %q, %+v, %v", got, m, ok)
	}
	if _, _, ok := c.Get("missing"); ok {
		t.Error("Get(missing) reported ok")
	}

	// Corrupting the object degrades to a miss, never a bad read.
	if err := os.WriteFile(c.objectPath(meta.Digest), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("somekey"); ok {
		t.Error("corrupted object served as a hit")
	}

	// A fresh Put repairs the entry.
	if err := c.Put("somekey", raw, meta); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("somekey"); !ok {
		t.Error("entry not repaired by Put")
	}

	// Corrupt key metadata is also just a miss.
	if err := os.WriteFile(c.keyPath("badmeta"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("badmeta"); ok {
		t.Error("corrupt meta served as a hit")
	}

	// No stray temp files linger after writes.
	for _, sub := range []string{"objects", "keys"} {
		matches, _ := filepath.Glob(filepath.Join(dir, sub, ".tmp-*"))
		if len(matches) != 0 {
			t.Errorf("leftover temp files in %s: %v", sub, matches)
		}
	}
}

func TestDiskCacheEndToEnd(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Cache: c}
	if _, err := r.Run("build", chainStages(nil)); err != nil {
		t.Fatal(err)
	}
	// A second runner over the same directory (fresh process, in
	// spirit) replays everything.
	c2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs := map[string]*atomic.Int64{}
	res, err := (&Runner{Cache: c2}).Run("build", chainStages(runs))
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range runs {
		if n.Load() != 0 {
			t.Errorf("stage %s re-ran across processes", id)
		}
	}
	if v, _ := res.Value("c"); v.(int) != 37 {
		t.Fatalf("c = %v, want 37", v)
	}
}

func TestFingerprint(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Error("fingerprint collided across field boundaries")
	}
	if Fingerprint("x") != Fingerprint("x") {
		t.Error("fingerprint not deterministic")
	}
	if Fingerprint() == Fingerprint("") {
		t.Error("empty fingerprint collided with one empty field")
	}
}

func TestCacheKeyChangesWithInputs(t *testing.T) {
	s := &Stage{ID: "x", Version: "v1", Config: "c"}
	k1 := cacheKey(s, []*artifact{{digest: "d1"}})
	k2 := cacheKey(s, []*artifact{{digest: "d2"}})
	if k1 == k2 {
		t.Error("cache key ignored input digest")
	}
	s2 := &Stage{ID: "x", Version: "v2", Config: "c"}
	if cacheKey(s2, []*artifact{{digest: "d1"}}) == k1 {
		t.Error("cache key ignored version")
	}
	s3 := &Stage{ID: "x", Version: "v1", Config: "c2"}
	if cacheKey(s3, []*artifact{{digest: "d1"}}) == k1 {
		t.Error("cache key ignored config")
	}
}
