package classify

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
)

var benchErrata []*core.Erratum

func benchCorpus(b *testing.B) []*core.Erratum {
	b.Helper()
	if benchErrata == nil {
		gt, err := corpus.Generate(1)
		if err != nil {
			b.Fatal(err)
		}
		benchErrata = gt.DB.Errata()
	}
	return benchErrata
}

// BenchmarkClassifyEngine compares the matching strategies on the
// generated corpus. Sub-benchmark names are benchstat-friendly
// (impl=<variant>), so runs can be diffed per variant:
//
//	go test -run '^$' -bench BenchmarkClassifyEngine -benchmem ./internal/classify/
//
// or via `make bench-classify`, which also emits BENCH_classify.json.
func BenchmarkClassifyEngine(b *testing.B) {
	errata := benchCorpus(b)
	for _, kc := range kernelConfigs {
		b.Run("impl="+kc.name, func(b *testing.B) {
			eng := NewEngineConfig(kc.cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Classify(errata[i%len(errata)])
			}
		})
	}
}

// BenchmarkClassifyEngineObs measures the cost of wiring an obs
// registry into the production configuration (prefilter+memo). The
// instrumented hot path is a handful of atomic adds per Classify; the
// EXPERIMENTS.md budget for the obs=on/obs=off gap is <2%.
func BenchmarkClassifyEngineObs(b *testing.B) {
	errata := benchCorpus(b)
	for _, variant := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"obs=off", nil},
		{"obs=on", obs.NewRegistry()},
	} {
		b.Run(variant.name, func(b *testing.B) {
			eng := NewEngineConfig(Config{Prefilter: true, Memo: true, Obs: variant.reg})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Classify(errata[i%len(errata)])
			}
		})
	}
}

// BenchmarkClassifyEngineColdMemo measures the kernel with a fresh memo
// per corpus pass — the first-build cost, before clause reuse pays off.
func BenchmarkClassifyEngineColdMemo(b *testing.B) {
	errata := benchCorpus(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := NewEngine()
		for _, e := range errata {
			eng.Classify(e)
		}
	}
}

// BenchmarkNewEngine pins the construction cost: after hoisting the
// rule compilation to package level, constructing an engine must not
// recompile any regexes.
func BenchmarkNewEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e := NewEngine(); e == nil {
			b.Fatal("nil engine")
		}
	}
}
