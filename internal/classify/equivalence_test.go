package classify

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/taxonomy"
)

// kernelConfigs enumerates every matching strategy; the zero config is
// the naive reference.
var kernelConfigs = []struct {
	name string
	cfg  Config
}{
	{"naive", Config{}},
	{"prefilter", Config{Prefilter: true}},
	{"memo", Config{Memo: true}},
	{"prefilter-memo", Config{Prefilter: true, Memo: true}},
}

// diffReports explains the first difference between two reports, or
// returns "" when they are identical. Shared by the contract test and
// the differential fuzz target.
func diffReports(a, b *Report) string {
	switch {
	case !reflect.DeepEqual(a.Decisions, b.Decisions):
		return fmt.Sprintf("Decisions: %v vs %v", a.Decisions, b.Decisions)
	case !reflect.DeepEqual(a.Concrete, b.Concrete):
		return fmt.Sprintf("Concrete: %v vs %v", a.Concrete, b.Concrete)
	case !reflect.DeepEqual(a.Segments, b.Segments):
		return fmt.Sprintf("Segments: %+v vs %+v", a.Segments, b.Segments)
	case !reflect.DeepEqual(a.MSRs, b.MSRs):
		return fmt.Sprintf("MSRs: %v vs %v", a.MSRs, b.MSRs)
	case !reflect.DeepEqual(a.SuspiciousMSRs, b.SuspiciousMSRs):
		return fmt.Sprintf("SuspiciousMSRs: %v vs %v", a.SuspiciousMSRs, b.SuspiciousMSRs)
	case a.Complex != b.Complex, a.Trivial != b.Trivial, a.SimulationOnly != b.SimulationOnly:
		return fmt.Sprintf("flags: %v/%v/%v vs %v/%v/%v",
			a.Complex, a.Trivial, a.SimulationOnly, b.Complex, b.Trivial, b.SimulationOnly)
	case a.WorkaroundCat != b.WorkaroundCat, a.Fix != b.Fix:
		return fmt.Sprintf("workaround/fix: %v/%v vs %v/%v", a.WorkaroundCat, a.Fix, b.WorkaroundCat, b.Fix)
	}
	return ""
}

// TestKernelEquivalenceAcrossSeeds is the equivalence contract of the
// matching kernel: over several generated corpora, every configuration
// must produce bit-identical Reports — decisions, concrete clauses,
// segments with their highlight spans, MSR extraction — and identical
// aggregate statistics, so enabling the kernel by default can never
// change a classification.
func TestKernelEquivalenceAcrossSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	naive := NewEngineConfig(Config{})
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			gt, err := corpus.Generate(seed)
			if err != nil {
				t.Fatal(err)
			}
			errata := gt.DB.Errata()
			want := make([]*Report, len(errata))
			var wantStats Stats
			for i, e := range errata {
				want[i] = naive.Classify(e)
				wantStats.Accumulate(want[i])
			}
			for _, kc := range kernelConfigs[1:] {
				eng := NewEngineConfig(kc.cfg)
				var stats Stats
				for i, e := range errata {
					got := eng.Classify(e)
					if d := diffReports(want[i], got); d != "" {
						t.Fatalf("%s: erratum %s/%s differs: %s", kc.name, e.DocKey, e.ID, d)
					}
					if h, hn := Highlight(e, got), Highlight(e, want[i]); h != hn {
						t.Fatalf("%s: erratum %s/%s highlight differs:\n%s\nvs\n%s", kc.name, e.DocKey, e.ID, h, hn)
					}
					if !reflect.DeepEqual(got.UndecidedPairs(eng.Scheme()), want[i].UndecidedPairs(naive.Scheme())) {
						t.Fatalf("%s: erratum %s/%s undecided pairs differ", kc.name, e.DocKey, e.ID)
					}
					stats.Accumulate(got)
				}
				if stats != wantStats {
					t.Fatalf("%s: stats %+v, want %+v", kc.name, stats, wantStats)
				}
				if stats.ReductionFactor() != wantStats.ReductionFactor() {
					t.Fatalf("%s: reduction factor %v, want %v", kc.name, stats.ReductionFactor(), wantStats.ReductionFactor())
				}
			}
		})
	}
}

// TestKernelBasePatternsAllPrefiltered documents that every base rule
// pattern currently yields a required literal, so the always-run slow
// path is empty. If a future rule legitimately has no extractable
// literal, update the expectation here — correctness does not depend on
// it, only the kernel's pruning power.
func TestKernelBasePatternsAllPrefiltered(t *testing.T) {
	_, kernels := baseCompiled()
	for kind, kk := range kernels {
		st := kk.kernel.Stats()
		if st.AlwaysRun != 0 {
			t.Errorf("%v: %d of %d patterns have no literal and always run", kind, st.AlwaysRun, st.Patterns)
		}
		if st.Patterns != len(kk.pat) {
			t.Errorf("%v: pattern table size %d != kernel size %d", kind, len(kk.pat), st.Patterns)
		}
	}
}

// TestKernelConcurrentClassify drives one shared kernel engine from
// many goroutines — the shape annotate's worker pool uses — and checks
// every report against a sequential baseline. Under -race this also
// proves the memo cache is data-race free.
func TestKernelConcurrentClassify(t *testing.T) {
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	errata := gt.DB.Errata()
	if len(errata) > 300 {
		errata = errata[:300]
	}
	naive := NewEngineConfig(Config{})
	want := make([]*Report, len(errata))
	for i, e := range errata {
		want[i] = naive.Classify(e)
	}
	eng := NewEngine()
	reports := make([]*Report, len(errata))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i] = eng.Classify(errata[i])
			}
		}()
	}
	for i := range errata {
		next <- i
	}
	close(next)
	wg.Wait()
	for i := range errata {
		if d := diffReports(want[i], reports[i]); d != "" {
			t.Fatalf("erratum %d differs under concurrency: %s", i, d)
		}
	}
}

// TestMemoCacheBound checks the clear-on-full policy: the cache never
// exceeds its bound and keeps answering correctly across the reset.
func TestMemoCacheBound(t *testing.T) {
	reg := obs.NewRegistry()
	clears := reg.Counter("test_memo_clears_total", "")
	c := newMemoCache(8, clears)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("clause %d", i)
		c.put(key, []string{key}, nil)
		if len(c.m) > 8 {
			t.Fatalf("cache grew to %d entries", len(c.m))
		}
		s, _, ok := c.get(key)
		if !ok || len(s) != 1 || s[0] != key {
			t.Fatalf("entry %d not readable after put", i)
		}
	}
	// 100 puts through an 8-entry clear-on-full cache reset 12 times
	// (on puts 9, 17, 25, ...), and the instrument sees each reset.
	if got := clears.Value(); got != 12 {
		t.Fatalf("clears counter = %d, want 12", got)
	}
}

// TestEngineSharesCompiledRules pins the hoisting satellite: two
// engines must reference the same compiled rule set (no recompilation
// per construction).
func TestEngineSharesCompiledRules(t *testing.T) {
	a, b := NewEngine(), NewEngineConfig(Config{})
	for k := range a.rules {
		if len(a.rules[k]) == 0 {
			t.Fatalf("kind %v has no rules", k)
		}
		if &a.rules[k][0] != &b.rules[k][0] {
			t.Errorf("kind %v: engines hold different compiled rule arrays", k)
		}
	}
	if a.kernels[taxonomy.Trigger] == nil || a.kernels[taxonomy.Trigger] != b.kernels[taxonomy.Trigger] {
		t.Error("engines hold different kernels")
	}
}
