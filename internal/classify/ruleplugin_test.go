package classify

import (
	"testing"

	"repro/internal/core"
	"repro/pkg/pluginapi"
	example "repro/plugins/rulepack/example"
)

// TestNewEngineForExamplePack compiles the third-party-style example
// plugin and checks a classification end to end, proving a pack that
// imports only pkg/ works through the explicit-selection path.
func TestNewEngineForExamplePack(t *testing.T) {
	pack, ok := pluginapi.LookupRulePack(example.Name)
	if !ok {
		t.Fatalf("example pack not registered")
	}
	e, err := NewEngineFor(pack, nil, Config{Prefilter: true, Memo: true})
	if err != nil {
		t.Fatal(err)
	}
	er := &core.Erratum{
		DocKey:      "doc",
		ID:          "X1",
		Title:       "Processor May Hang",
		Description: "When a warm reset occurs, the processor may hang.",
	}
	rep := e.Classify(er)
	if d := rep.Decisions["Trg_EXT_rst"]; d != Include {
		t.Errorf("Trg_EXT_rst = %v, want Include", d)
	}
	if d := rep.Decisions["Eff_HNG_hng"]; d != Include {
		t.Errorf("Eff_HNG_hng = %v, want Include", d)
	}
}

// TestNewEngineForRejectsBadPacks checks compile-time validation of
// rule packs: unknown categories, unknown kinds and invalid regexes
// are reported with the pack name.
func TestNewEngineForRejectsBadPacks(t *testing.T) {
	cases := []struct {
		name string
		spec pluginapi.RuleSpec
	}{
		{"unknown category", pluginapi.RuleSpec{Kind: 0, Category: "Trg_NO_such", Strong: []string{`x`}}},
		{"unknown kind", pluginapi.RuleSpec{Kind: 7, Category: "Trg_EXT_rst", Strong: []string{`x`}}},
		{"bad regex", pluginapi.RuleSpec{Kind: 0, Category: "Trg_EXT_rst", Strong: []string{`(`}}},
	}
	for _, tc := range cases {
		_, err := NewEngineFor(staticPack{specs: []pluginapi.RuleSpec{tc.spec}}, nil, Config{})
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

type staticPack struct{ specs []pluginapi.RuleSpec }

func (p staticPack) Info() pluginapi.Info {
	return pluginapi.Info{Name: "static", APIVersion: pluginapi.APIVersion}
}
func (p staticPack) Rules() []pluginapi.RuleSpec { return p.specs }
