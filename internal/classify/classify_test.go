package classify

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/taxonomy"
)

var engine = NewEngine()

// synthetic builds an erratum embedding one phrase in the proper section
// for its kind.
func synthetic(kind taxonomy.Kind, phrase string) *core.Erratum {
	e := &core.Erratum{DocKey: "intel-06", ID: "TST001", Seq: 1, Title: "Test"}
	switch kind {
	case taxonomy.Trigger:
		e.Description = "When " + phrase + ", the described behavior may occur."
	case taxonomy.Context:
		e.Description = "When a warm reset is applied to the processor, the described behavior may occur. " +
			"This erratum applies while " + phrase + "."
	case taxonomy.Effect:
		e.Description = "When a warm reset is applied to the processor, " + phrase + "."
	}
	return e
}

// TestRuleCoverageAndExclusivity is the central invariant of the
// software-assisted classification: for every phrase of every category,
// the filter must either auto-include the right category or leave it
// undecided (never auto-exclude it), and it must never auto-include a
// wrong category of the same kind.
func TestRuleCoverageAndExclusivity(t *testing.T) {
	banks := corpus.PhraseBanks()
	for kind, bank := range banks {
		for cat, phrases := range bank {
			for _, phrase := range phrases {
				rep := engine.Classify(synthetic(kind, phrase))
				got := rep.Decisions[cat]
				if got == Exclude {
					t.Errorf("%s: phrase %q auto-excluded its own category", cat, phrase)
				}
				for _, other := range engine.Scheme().Categories(kind) {
					if other.ID == cat {
						continue
					}
					if rep.Decisions[other.ID] == Include {
						t.Errorf("phrase %q of %s falsely auto-includes %s", phrase, cat, other.ID)
					}
				}
			}
		}
	}
}

// Distinctive phrasings (all but the last of each bank) should mostly be
// auto-included: this is what achieves the paper's 30x decision
// reduction.
func TestDistinctivePhrasesMostlyAutoInclude(t *testing.T) {
	banks := corpus.PhraseBanks()
	total, included := 0, 0
	for kind, bank := range banks {
		for cat, phrases := range bank {
			for _, phrase := range phrases[:len(phrases)-1] {
				total++
				rep := engine.Classify(synthetic(kind, phrase))
				if rep.Decisions[cat] == Include {
					included++
				}
			}
		}
	}
	frac := float64(included) / float64(total)
	if frac < 0.80 {
		t.Errorf("only %.0f%% of distinctive phrases auto-include (want >= 80%%)", 100*frac)
	}
}

func TestMultiTriggerSegmentation(t *testing.T) {
	e := &core.Erratum{
		DocKey: "intel-06", ID: "TST002", Seq: 1,
		Description: "When software writes a model specific register with a reserved encoding " +
			"and thermal throttling engages under load, the processor may hang. " +
			"This erratum applies while running as a virtual machine guest.",
		Implication: "The system may be affected as described. The processor may hang.",
	}
	rep := engine.Classify(e)
	for _, want := range []string{"Trg_CFG_wrg", "Trg_POW_tht", "Eff_HNG_hng", "Ctx_PRV_vmg"} {
		if rep.Decisions[want] != Include {
			t.Errorf("%s = %v, want include", want, rep.Decisions[want])
		}
	}
	if got := rep.Concrete["Trg_POW_tht"]; got != "thermal throttling engages under load" {
		t.Errorf("concrete for tht = %q", got)
	}
	if rep.Decisions["Trg_EXT_rst"] == Include {
		t.Error("reset falsely included")
	}
}

func TestComplexAndTrivialFlags(t *testing.T) {
	for _, s := range corpus.ComplexConditionSentences() {
		e := &core.Erratum{Description: s + " When a warm reset is applied to the processor, the processor may hang."}
		if rep := engine.Classify(e); !rep.Complex {
			t.Errorf("complex sentence not flagged: %q", s)
		}
	}
	for _, s := range corpus.TrivialTriggerSentences() {
		e := &core.Erratum{Description: s + " The processor may hang."}
		rep := engine.Classify(e)
		if !rep.Trivial {
			t.Errorf("trivial sentence not flagged: %q", s)
		}
	}
	plain := &core.Erratum{Description: "When a warm reset is applied to the processor, the processor may hang."}
	if rep := engine.Classify(plain); rep.Complex || rep.Trivial {
		t.Error("flags set on plain erratum")
	}
}

func TestMSRExtraction(t *testing.T) {
	e := &core.Erratum{
		Description: "When a counter overflow occurs, the MSR may contain a wrong value. " +
			"The affected state may be observed in the MCx_STATUS register. " +
			"The affected state may be observed in the MCx_ADDR register.",
	}
	rep := engine.Classify(e)
	if len(rep.MSRs) != 2 || rep.MSRs[0] != "MCx_STATUS" || rep.MSRs[1] != "MCx_ADDR" {
		t.Errorf("MSRs = %v", rep.MSRs)
	}
	if len(rep.SuspiciousMSRs) != 0 {
		t.Errorf("suspicious = %v", rep.SuspiciousMSRs)
	}
	bad := &core.Erratum{
		Description: "When a counter overflow occurs, the processor may hang. " +
			"The erroneous value is latched in MSR 0xFFFF_FFFF.",
	}
	rep = engine.Classify(bad)
	if len(rep.SuspiciousMSRs) != 1 {
		t.Errorf("suspicious = %v, want 1 entry", rep.SuspiciousMSRs)
	}
	if len(rep.MSRs) != 0 {
		t.Errorf("MSRs = %v, want none", rep.MSRs)
	}
}

func TestWorkaroundClassification(t *testing.T) {
	for cat, bank := range corpus.WorkaroundTextBank() {
		want, err := core.ParseWorkaroundCategory(cat)
		if err != nil {
			t.Fatal(err)
		}
		for _, text := range bank {
			if got := ClassifyWorkaround(text); got != want {
				t.Errorf("ClassifyWorkaround(%q) = %v, want %v", text, got, want)
			}
		}
	}
	if ClassifyWorkaround("") != core.WorkaroundNone {
		t.Error("empty workaround should classify as None")
	}
	if ClassifyWorkaround("Mysterious measures may exist.") != core.WorkaroundAbsent {
		t.Error("unrecognized workaround should classify as Absent")
	}
}

func TestStatusClassification(t *testing.T) {
	for st, bank := range corpus.StatusTextBank() {
		want, err := core.ParseFixStatus(st)
		if err != nil {
			t.Fatal(err)
		}
		for _, text := range bank {
			if got := ClassifyStatus(text); got != want {
				t.Errorf("ClassifyStatus(%q) = %v, want %v", text, got, want)
			}
		}
	}
	if ClassifyStatus("") != core.FixNone {
		t.Error("empty status should classify as NoFixPlanned")
	}
}

func TestStatsAccounting(t *testing.T) {
	var s Stats
	e := synthetic(taxonomy.Trigger, "a warm reset is applied to the processor")
	s.Accumulate(engine.Classify(e))
	if s.Errata != 1 {
		t.Errorf("errata = %d", s.Errata)
	}
	if s.RawDecisions != engine.Scheme().NumCategories(-1) {
		t.Errorf("raw decisions = %d, want %d", s.RawDecisions, engine.Scheme().NumCategories(-1))
	}
	if s.AutoIncluded+s.AutoExcluded+s.Undecided != s.RawDecisions {
		t.Error("decision partition does not sum")
	}
	if s.AutoIncluded == 0 {
		t.Error("reset phrase should auto-include")
	}
	if s.ReductionFactor() <= 1 && s.Undecided > 0 {
		t.Error("reduction factor should exceed 1")
	}
}

func TestHighlight(t *testing.T) {
	e := &core.Erratum{
		Title: "Processor May Hang",
		Description: "When thermal throttling engages under load, the processor may hang. " +
			"This erratum applies while running as a virtual machine guest.",
	}
	rep := engine.Classify(e)
	out := Highlight(e, rep)
	for _, want := range []string{"Trg_POW_tht", "Eff_HNG_hng", "Ctx_PRV_vmg", "thermal throttling"} {
		if !strings.Contains(out, want) {
			t.Errorf("highlight missing %q:\n%s", want, out)
		}
	}
}

func TestUndecidedSurfacedForVaguePhrase(t *testing.T) {
	// The vague phrasings must surface as undecided, not vanish.
	e := synthetic(taxonomy.Trigger, "a power state change is requested")
	rep := engine.Classify(e)
	if rep.Decisions["Trg_POW_pwc"] != Undecided {
		t.Errorf("vague power phrase decision = %v, want undecided", rep.Decisions["Trg_POW_pwc"])
	}
	pairs := rep.UndecidedPairs(engine.Scheme())
	found := false
	for _, p := range pairs {
		if p == "Trg_POW_pwc" {
			found = true
		}
	}
	if !found {
		t.Errorf("UndecidedPairs missing Trg_POW_pwc: %v", pairs)
	}
}

func TestDecisionString(t *testing.T) {
	if Exclude.String() != "exclude" || Undecided.String() != "undecided" || Include.String() != "include" {
		t.Error("decision labels wrong")
	}
}

func TestClassifyEmptyAndOddInputs(t *testing.T) {
	// Empty erratum: everything excluded, no flags, no panic.
	rep := engine.Classify(&core.Erratum{})
	for cat, d := range rep.Decisions {
		if d != Exclude {
			t.Errorf("empty erratum: %s = %v", cat, d)
		}
	}
	if rep.Complex || rep.Trivial || rep.SimulationOnly || len(rep.MSRs) != 0 {
		t.Error("empty erratum: flags set")
	}

	// Unknown sentence shapes are scanned as advisory effect evidence:
	// they may surface undecided pairs but never auto-include.
	odd := &core.Erratum{Description: "The processor may hang. Completely free-form sentence here."}
	rep = engine.Classify(odd)
	if rep.Decisions["Eff_HNG_hng"] == Exclude {
		t.Error("advisory hang evidence vanished")
	}
	if rep.Decisions["Eff_HNG_hng"] == Include {
		t.Error("advisory evidence auto-included")
	}

	// A "When" sentence without a comma is a pure trigger clause.
	noComma := &core.Erratum{Description: "When a warm reset is applied to the processor."}
	rep = engine.Classify(noComma)
	if rep.Decisions["Trg_EXT_rst"] != Include {
		t.Errorf("comma-free trigger clause = %v", rep.Decisions["Trg_EXT_rst"])
	}
}

func TestSimulationOnlyFlag(t *testing.T) {
	e := &core.Erratum{
		Description: "When a warm reset is applied to the processor, the processor may hang. " +
			"This erratum has only been observed in simulation.",
	}
	rep := engine.Classify(e)
	if !rep.SimulationOnly {
		t.Error("simulation-only sentence not flagged")
	}
	// The flag sentence must not leak into effect classification.
	if rep.Decisions["Eff_HNG_unp"] == Include {
		t.Error("flag sentence auto-included an effect")
	}
}

func TestSegmentFields(t *testing.T) {
	e := &core.Erratum{
		Description: "When a warm reset is applied to the processor, the processor may hang.",
		Implication: "The processor may hang.",
	}
	rep := engine.Classify(e)
	fields := map[string]bool{}
	advisoryCount := 0
	for _, seg := range rep.Segments {
		fields[seg.Field] = true
		if seg.Advisory {
			advisoryCount++
		}
	}
	if !fields["Description"] || !fields["Implication"] {
		t.Errorf("segment fields = %v", fields)
	}
	if advisoryCount == 0 {
		t.Error("implication segments should be advisory")
	}
}
