package classify

import (
	"testing"

	"repro/internal/core"
)

// Shared engines: fuzzing runs workers in parallel, and sharing also
// stresses the memo cache with adversarial clause streams.
var (
	fuzzNaive  = NewEngineConfig(Config{})
	fuzzKernel = NewEngine()
)

// FuzzClassifyEquivalence differentially fuzzes the matching kernel:
// for arbitrary erratum text the kernel-backed engine must produce a
// Report identical to the naive reference path. The corpus seeds cover
// the segmenter's sentence shapes plus case-folding traps (Kelvin sign,
// long s) where naive byte-wise lowering would diverge from Go's (?i)
// fold orbits.
func FuzzClassifyEquivalence(f *testing.F) {
	f.Add("When software writes a model specific register with a reserved encoding, the processor may hang. "+
		"This erratum applies while running as a virtual machine guest.",
		"The system may be affected as described.")
	f.Add("When an access straddles a cache line boundary, an MCA error may be reported. "+
		"The affected state may be observed in the MCx_STATUS register.", "")
	f.Add("When a ſpeculative acceſs ſtraddles a page boundary, the reſult is unpredictable.", "")
	f.Add("When the KELVIN unit overheats, a thermal event occurs. In addition, power consumption may increase.",
		"The proceſſor may hang; the system may crash.")
	f.Add("This erratum has only been observed in simulation. The erroneous value is latched in MSR 0xFFFF_FFFF.", "")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, desc, impl string) {
		e := &core.Erratum{Description: desc, Implication: impl}
		want := fuzzNaive.Classify(e)
		got := fuzzKernel.Classify(e)
		if d := diffReports(want, got); d != "" {
			t.Fatalf("kernel diverges from naive on %q / %q: %s", desc, impl, d)
		}
		if h, hn := Highlight(e, got), Highlight(e, want); h != hn {
			t.Fatalf("highlight diverges on %q / %q", desc, impl)
		}
	})
}
