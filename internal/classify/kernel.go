package classify

import (
	"regexp"
	"sync"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/taxonomy"
)

// This file wires the multi-pattern matching kernel (internal/match)
// into the rule engine. Per kind, every strong and weak pattern of
// every rule is flattened into one pattern set and compiled into one
// kernel; a segment is then folded and scanned once, and only the
// candidate patterns the automaton could not rule out run their
// regexes. Pattern ids are assigned rule-major with strong patterns
// before weak ones, so iterating a sorted candidate list visits rules
// in rule order and resolves each rule's strong patterns before its
// weak ones — which is exactly the order the naive path needs.

// numKinds is the number of annotation dimensions (taxonomy.Kinds).
const numKinds = 3

// kindKernel is the compiled kernel of one kind's rule list.
type kindKernel struct {
	kernel *match.Kernel
	// pat maps pattern id to its owning rule and class.
	pat []patInfo
	// numRules is the length of the kind's rule list.
	numRules int
}

type patInfo struct {
	rule   int32
	strong bool
}

// buildKindKernel flattens the compiled rules and their sources into
// one kernel. rules[i] must be the compiled form of specs[i].
func buildKindKernel(rules []rule, specs []ruleSpec) *kindKernel {
	kk := &kindKernel{numRules: len(rules)}
	var regexes []*regexp.Regexp
	var sources []string
	for i := range rules {
		for j, p := range rules[i].strong {
			regexes = append(regexes, p)
			sources = append(sources, `(?i)`+specs[i].strong[j])
			kk.pat = append(kk.pat, patInfo{rule: int32(i), strong: true})
		}
		for j, p := range rules[i].weak {
			regexes = append(regexes, p)
			sources = append(sources, `(?i)`+specs[i].weak[j])
			kk.pat = append(kk.pat, patInfo{rule: int32(i)})
		}
	}
	k, err := match.New(regexes, sources, match.DefaultMinLiteral)
	if err != nil {
		panic("classify: kernel build: " + err.Error())
	}
	kk.kernel = k
	return kk
}

// matchScratch is the pooled per-call state of the kernel path.
type matchScratch struct {
	// rules holds one state byte per rule: ruleUnseen, ruleStrong or
	// ruleWeak. Sized for the largest kind and re-zeroed per call.
	rules []uint8
	cands []int
}

const (
	ruleUnseen uint8 = iota
	ruleStrong
	ruleWeak
)

// matchKernel is the prefiltered equivalent of matchNaive.
func (e *Engine) matchKernel(kind taxonomy.Kind, text string) (strong, weak []string) {
	kk := e.kernels[kind]
	sc := e.scratch.Get().(*matchScratch)
	sc.cands = kk.kernel.Candidates(text, sc.cands)
	state := sc.rules[:kk.numRules]
	for i := range state {
		state[i] = ruleUnseen
	}
	// Candidates are sorted by id, hence rule-major with strong ids
	// first: by the time a rule's weak candidates appear, its strong
	// verdict is final. Any pattern not in the candidate set provably
	// does not match, so skipping it preserves the naive semantics.
	confirmed := 0
	for _, id := range sc.cands {
		pi := kk.pat[id]
		switch {
		case pi.strong:
			if state[pi.rule] != ruleStrong && kk.kernel.Pattern(id).MatchString(text) {
				state[pi.rule] = ruleStrong
				confirmed++
			}
		case state[pi.rule] == ruleUnseen:
			if kk.kernel.Pattern(id).MatchString(text) {
				state[pi.rule] = ruleWeak
				confirmed++
			}
		}
	}
	e.prefCands.Add(int64(len(sc.cands)))
	e.prefConfirmed.Add(int64(confirmed))
	rules := e.rules[kind]
	for i, st := range state {
		switch st {
		case ruleStrong:
			strong = append(strong, rules[i].category)
		case ruleWeak:
			weak = append(weak, rules[i].category)
		}
	}
	e.scratch.Put(sc)
	return strong, weak
}

// Extractor pattern ids in flagsKernel, in registration order.
const (
	idxComplex = iota
	idxTrivial
	idxSimOnly
	idxMSRObs
	idxMSRRaw
)

// flagsKernel prefilters the five extractor patterns that scan whole
// erratum texts (flag sentences and MSR extraction). Every one of them
// has a long required literal, so the single automaton scan replaces
// five backtracking regex runs on the overwhelmingly common
// no-extractor text.
var flagsKernel = func() *match.Kernel {
	k, err := match.New(
		[]*regexp.Regexp{complexRe, trivialRe, simOnlyRe, msrObsRe, msrRawRe},
		[]string{complexSrc, trivialSrc, simOnlySrc, msrObsSrc, msrRawSrc},
		match.DefaultMinLiteral,
	)
	if err != nil {
		panic("classify: flags kernel build: " + err.Error())
	}
	return k
}()

// flagCandidates scans a text once and reports which extractor patterns
// may match it. The superset guarantee carries over from the kernel:
// a cleared bit proves the pattern cannot match.
func (e *Engine) flagCandidates(text string) (hit [5]bool) {
	sc := e.scratch.Get().(*matchScratch)
	sc.cands = flagsKernel.Candidates(text, sc.cands)
	for _, id := range sc.cands {
		hit[id] = true
	}
	e.scratch.Put(sc)
	return hit
}

// isFlagSentence reports whether a sentence is one of the flag
// sentences the extractors own (complex-conditions, trivial-trigger or
// simulation-only phrasing), prefiltered when the kernel is enabled.
func (e *Engine) isFlagSentence(s string) bool {
	if !e.cfg.Prefilter {
		return complexRe.MatchString(s) || trivialRe.MatchString(s) || simOnlyRe.MatchString(s)
	}
	hit := e.flagCandidates(s)
	return hit[idxComplex] && complexRe.MatchString(s) ||
		hit[idxTrivial] && trivialRe.MatchString(s) ||
		hit[idxSimOnly] && simOnlyRe.MatchString(s)
}

// memoMaxEntries bounds each per-kind memo cache. A corpus build sees a
// few thousand distinct clauses, so the bound exists to keep adversarial
// or unbounded inputs from growing the cache without limit, not to
// evict in normal operation.
const memoMaxEntries = 1 << 15

// memoCache memoizes per-clause match vectors. The key is the clause
// text exactly as the segmenter produced it (the segmenter already
// normalizes clauses by splitting and trimming); the key is deliberately
// not case-folded so the cache stays correct even for case-sensitive
// patterns. Cached slices are returned to multiple reports and must
// never be mutated.
//
// Determinism: a hit returns exactly what the miss path would compute,
// so cache state — including the clear-on-full reset — can never change
// a classification, only its cost.
type memoCache struct {
	mu     sync.RWMutex
	m      map[string]memoEntry
	max    int
	clears *obs.Counter // clear-on-full resets; nil when uninstrumented
}

type memoEntry struct {
	strong, weak []string
}

func newMemoCache(max int, clears *obs.Counter) *memoCache {
	return &memoCache{m: make(map[string]memoEntry), max: max, clears: clears}
}

func (c *memoCache) get(text string) (strong, weak []string, ok bool) {
	c.mu.RLock()
	e, ok := c.m[text]
	c.mu.RUnlock()
	return e.strong, e.weak, ok
}

func (c *memoCache) put(text string, strong, weak []string) {
	c.mu.Lock()
	if len(c.m) >= c.max {
		// Clear-on-full: the hot templated clauses repopulate within
		// one batch, and the policy is trivially deterministic.
		c.m = make(map[string]memoEntry)
		c.clears.Inc()
	}
	c.m[text] = memoEntry{strong: strong, weak: weak}
	c.mu.Unlock()
}
