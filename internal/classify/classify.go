package classify

import (
	"regexp"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/taxonomy"
	"repro/pkg/domain"
)

// Decision is the outcome of the conservative auto-filter for one
// (erratum, category) pair.
type Decision int

const (
	// Exclude: the category is clearly irrelevant for the erratum.
	Exclude Decision = iota
	// Undecided: the pair needs a human decision.
	Undecided
	// Include: the category clearly applies.
	Include
)

// String returns the decision label.
func (d Decision) String() string {
	switch d {
	case Exclude:
		return "exclude"
	case Undecided:
		return "undecided"
	case Include:
		return "include"
	default:
		return "invalid"
	}
}

// Segment is one classified region of an erratum's text: a trigger
// clause, context clause or effect clause, together with the matched
// categories.
type Segment struct {
	// Kind tells which annotation dimension the segment belongs to.
	Kind taxonomy.Kind
	// Text is the clause text (the concrete-level description).
	Text string
	// Field is the erratum field the segment came from ("Description"
	// or "Implication").
	Field string
	// Strong lists categories whose distinctive patterns matched.
	Strong []string
	// Weak lists categories with suggestive matches only.
	Weak []string
	// Advisory marks segments scanned as corroborating evidence only
	// (e.g. the implication field repeats the effects); strong matches
	// in advisory segments do not auto-include.
	Advisory bool
}

// Report is the auto-classification of one erratum.
type Report struct {
	// Decisions maps every abstract category to its filter outcome.
	Decisions map[string]Decision
	// Concrete maps included or undecided categories to the clause that
	// triggered the match.
	Concrete map[string]string
	// Segments lists the classified clauses in text order.
	Segments []Segment
	// MSRs lists registers named as observation points ("The affected
	// state may be observed in the X register").
	MSRs []string
	// SuspiciousMSRs lists raw MSR tokens that do not belong to the
	// known register vocabulary (the paper found erroneous MSR numbers
	// in 3 errata).
	SuspiciousMSRs []string
	// Complex is set when the text mentions a complex set of conditions.
	Complex bool
	// Trivial is set when the text reports only trivial triggers.
	Trivial bool
	// SimulationOnly is set when the bug was only observed in
	// simulation.
	SimulationOnly bool
	// WorkaroundCat is the classified workaround category (Figure 6).
	WorkaroundCat core.WorkaroundCategory
	// Fix is the classified fix status (Figure 7).
	Fix core.FixStatus
}

// UndecidedPairs returns the categories requiring human decisions, in
// scheme order.
func (r *Report) UndecidedPairs(scheme domain.Scheme) []string {
	var out []string
	for cat, d := range r.Decisions {
		if d == Undecided {
			out = append(out, cat)
		}
	}
	return scheme.SortCategoryIDs(out)
}

// IncludedCategories returns the auto-included categories in scheme
// order.
func (r *Report) IncludedCategories(scheme domain.Scheme) []string {
	var out []string
	for cat, d := range r.Decisions {
		if d == Include {
			out = append(out, cat)
		}
	}
	return scheme.SortCategoryIDs(out)
}

// The extractor pattern sources are named so the flags kernel
// (kernel.go) can extract required literals from the exact source each
// regex was compiled from.
const (
	complexSrc = `(?i)complex set of .*conditions|highly specific and detailed set`
	trivialSrc = `(?i)normal operation with ordinary load and store|intense workloads|routine execution`
	simOnlySrc = `(?i)only been observed in simulation`
	msrObsSrc  = `observed in the ([A-Za-z0-9_]+) register`
	msrRawSrc  = `\bMSR 0x[0-9A-Fa-f_]+\b`
)

var (
	complexRe = regexp.MustCompile(complexSrc)
	trivialRe = regexp.MustCompile(trivialSrc)
	msrObsRe  = regexp.MustCompile(msrObsSrc)
	simOnlyRe = regexp.MustCompile(simOnlySrc)
	msrRawRe  = regexp.MustCompile(msrRawSrc)
)

// knownMSRVocabulary is the register vocabulary of Figure 19; tokens
// outside it are flagged as suspicious.
var knownMSRVocabulary = map[string]bool{
	"MCx_STATUS": true, "MCx_ADDR": true,
	"IA32_PERF_STATUS": true, "IA32_PMCx": true, "IA32_FIXED_CTRx": true,
	"IA32_THERM_STATUS": true, "IA32_APIC_BASE": true, "IA32_DEBUGCTL": true,
	"IA32_MISC_ENABLE": true, "IA32_TSC": true,
	"IBS_FETCH_CTL": true, "IBS_OP_DATA": true, "PERF_CTRx": true,
	"HWCR": true, "APIC_BASE": true, "TSC": true,
}

// Classify runs the rule engine over one erratum.
func (e *Engine) Classify(err *core.Erratum) *Report {
	r := &Report{
		Decisions: make(map[string]Decision, len(e.catIDs)),
		Concrete:  make(map[string]string),
	}
	for _, id := range e.catIDs {
		r.Decisions[id] = Exclude
	}

	segments := e.segment(err)
	for i := range segments {
		seg := &segments[i]
		seg.Strong, seg.Weak = e.matchSegment(seg.Kind, seg.Text)
		if seg.Advisory {
			// Advisory evidence never auto-includes; it only surfaces
			// categories for review.
			for _, cats := range [2][]string{seg.Strong, seg.Weak} {
				for _, cat := range cats {
					if r.Decisions[cat] == Exclude {
						r.Decisions[cat] = Undecided
						if _, ok := r.Concrete[cat]; !ok {
							r.Concrete[cat] = seg.Text
						}
					}
				}
			}
			continue
		}
		switch {
		case len(seg.Strong) == 1:
			cat := seg.Strong[0]
			r.Decisions[cat] = Include
			r.Concrete[cat] = seg.Text
			// Weak matches on the same segment still need review: a
			// clause can carry evidence for two categories.
			for _, w := range seg.Weak {
				if r.Decisions[w] == Exclude {
					r.Decisions[w] = Undecided
					if _, ok := r.Concrete[w]; !ok {
						r.Concrete[w] = seg.Text
					}
				}
			}
		default:
			// No strong match, or conflicting strong matches: every
			// surfaced category goes to the humans.
			for _, cats := range [2][]string{seg.Strong, seg.Weak} {
				for _, cat := range cats {
					if r.Decisions[cat] != Include {
						r.Decisions[cat] = Undecided
					}
					if _, ok := r.Concrete[cat]; !ok {
						r.Concrete[cat] = seg.Text
					}
				}
			}
		}
	}
	r.Segments = segments

	full := err.Description + " " + err.Implication
	// One automaton scan over the full text rules out extractors whose
	// required literal is absent; only the survivors run their regexes.
	// hit bits are a superset of the true matches, so skipping on a
	// cleared bit cannot change any result. (The Trivial and MSR
	// extractors scan only the description, for which candidacy on the
	// longer text is still a sound over-approximation.)
	hit := [5]bool{true, true, true, true, true}
	if e.cfg.Prefilter {
		hit = e.flagCandidates(full)
	}
	r.Complex = hit[idxComplex] && complexRe.MatchString(full)
	r.Trivial = hit[idxTrivial] && trivialRe.MatchString(err.Description)
	r.SimulationOnly = hit[idxSimOnly] && simOnlyRe.MatchString(full)

	if hit[idxMSRObs] {
		for _, m := range msrObsRe.FindAllStringSubmatch(err.Description, -1) {
			r.MSRs = append(r.MSRs, m[1])
			if !knownMSRVocabulary[m[1]] {
				r.SuspiciousMSRs = append(r.SuspiciousMSRs, m[1])
			}
		}
	}
	if hit[idxMSRRaw] {
		for _, m := range msrRawRe.FindAllString(full, -1) {
			r.SuspiciousMSRs = append(r.SuspiciousMSRs, m)
		}
	}

	r.WorkaroundCat = ClassifyWorkaround(err.Workaround)
	r.Fix = ClassifyStatus(err.Status)
	return r
}

// segment splits an erratum's description and implication into
// kind-scoped clauses following the documents' sentence conventions.
func (e *Engine) segment(err *core.Erratum) []Segment {
	var out []Segment
	for _, sentence := range splitSentences(err.Description) {
		switch {
		case strings.HasPrefix(sentence, "When "):
			body := strings.TrimPrefix(sentence, "When ")
			if i := strings.Index(body, ", "); i >= 0 {
				trigPart, effPart := body[:i], body[i+2:]
				for _, clause := range strings.Split(trigPart, " and ") {
					out = append(out, Segment{Kind: taxonomy.Trigger, Text: clause, Field: "Description"})
				}
				out = append(out, Segment{Kind: taxonomy.Effect, Text: effPart, Field: "Description"})
			} else {
				out = append(out, Segment{Kind: taxonomy.Trigger, Text: body, Field: "Description"})
			}
		case strings.HasPrefix(sentence, "This erratum applies while "):
			body := strings.TrimPrefix(sentence, "This erratum applies while ")
			for _, clause := range strings.Split(body, " or while ") {
				out = append(out, Segment{Kind: taxonomy.Context, Text: clause, Field: "Description"})
			}
		case strings.HasPrefix(sentence, "In addition, "):
			out = append(out, Segment{Kind: taxonomy.Effect,
				Text: strings.TrimPrefix(sentence, "In addition, "), Field: "Description"})
		case strings.HasPrefix(sentence, "The affected state may be observed"),
			strings.HasPrefix(sentence, "The erroneous value is latched"):
			// MSR sentences are handled by the extractors.
		case e.isFlagSentence(sentence):
			// Flag sentences are handled by the extractors.
		default:
			// Unknown sentence shape: scan as advisory effect evidence.
			out = append(out, Segment{Kind: taxonomy.Effect, Text: sentence,
				Field: "Description", Advisory: true})
		}
	}
	// The implication field redundantly repeats the effects; it is
	// scanned as advisory evidence only.
	for _, sentence := range splitSentences(err.Implication) {
		for _, clause := range strings.Split(sentence, "; ") {
			out = append(out, Segment{Kind: taxonomy.Effect, Text: clause,
				Field: "Implication", Advisory: true})
		}
	}
	return out
}

// splitSentences splits free text on sentence boundaries, stripping the
// trailing period.
func splitSentences(text string) []string {
	var out []string
	for _, s := range strings.Split(text, ". ") {
		s = strings.TrimSuffix(strings.TrimSpace(s), ".")
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

var (
	waNoneRe    = regexp.MustCompile(`(?i)^none identified`)
	waAbsentRe  = regexp.MustCompile(`(?i)^contact your`)
	waBIOSRe    = regexp.MustCompile(`(?i)\bbios\b`)
	waSWRe      = regexp.MustCompile(`(?i)system software|software should`)
	waPeriphRe  = regexp.MustCompile(`(?i)\bdevice\b|\bperipheral\b`)
	waDocRe     = regexp.MustCompile(`(?i)documentation`)
	stNoFixRe   = regexp.MustCompile(`(?i)no fix`)
	stPlannedRe = regexp.MustCompile(`(?i)planned|subsequent revision`)
	stFixedRe   = regexp.MustCompile(`(?i)\bfixed\b`)
)

// ClassifyWorkaround assigns a workaround category from the workaround
// field text, following Section IV-B3: "Contact ..." statements count as
// Absent even when they mention the BIOS.
func ClassifyWorkaround(text string) core.WorkaroundCategory {
	t := strings.TrimSpace(text)
	switch {
	case t == "" || waNoneRe.MatchString(t):
		return core.WorkaroundNone
	case waAbsentRe.MatchString(t):
		return core.WorkaroundAbsent
	case waDocRe.MatchString(t):
		return core.WorkaroundDocFix
	case waBIOSRe.MatchString(t):
		return core.WorkaroundBIOS
	case waSWRe.MatchString(t):
		return core.WorkaroundSoftware
	case waPeriphRe.MatchString(t):
		return core.WorkaroundPeripherals
	default:
		return core.WorkaroundAbsent
	}
}

// ClassifyStatus assigns a fix status from the status field text.
func ClassifyStatus(text string) core.FixStatus {
	t := strings.TrimSpace(text)
	switch {
	case t == "" || stNoFixRe.MatchString(t):
		return core.FixNone
	case stPlannedRe.MatchString(t):
		return core.FixPlanned
	case stFixedRe.MatchString(t):
		return core.FixDone
	default:
		return core.FixNone
	}
}

// Stats aggregates the decision accounting over a set of reports
// (Section V-A: 67,680 raw decisions reduced to 2,064 per human).
type Stats struct {
	// Errata is the number of classified errata.
	Errata int
	// RawDecisions is errata x categories, the unassisted workload.
	RawDecisions int
	// AutoIncluded, AutoExcluded and Undecided partition RawDecisions.
	AutoIncluded int
	AutoExcluded int
	Undecided    int
}

// ReductionFactor is the workload reduction achieved by the filter.
func (s Stats) ReductionFactor() float64 {
	if s.Undecided == 0 {
		return float64(s.RawDecisions)
	}
	return float64(s.RawDecisions) / float64(s.Undecided)
}

// Accumulate adds one report to the statistics.
func (s *Stats) Accumulate(r *Report) {
	s.Errata++
	for _, d := range r.Decisions {
		s.RawDecisions++
		switch d {
		case Include:
			s.AutoIncluded++
		case Exclude:
			s.AutoExcluded++
		case Undecided:
			s.Undecided++
		}
	}
}

// Highlight renders the classified segments of a report as an annotated
// text: each clause is wrapped in [Category|...] markers, reproducing
// the syntax-highlighting tool the paper built to assist the human
// annotators.
func Highlight(err *core.Erratum, r *Report) string {
	var b strings.Builder
	b.WriteString("Title: " + err.Title + "\n")
	b.WriteString("Description: " + err.Description + "\n")
	b.WriteString("Relevant regions:\n")
	segs := append([]Segment(nil), r.Segments...)
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Kind < segs[j].Kind })
	for _, seg := range segs {
		cats := append(append([]string(nil), seg.Strong...), seg.Weak...)
		if len(cats) == 0 {
			continue
		}
		marker := "?"
		if len(seg.Strong) == 1 && !seg.Advisory {
			marker = "!"
		}
		b.WriteString("  [" + strings.Join(cats, ",") + marker + "] " + seg.Text + "\n")
	}
	return b.String()
}
