// Package classify implements RemembERR's software-assisted
// classification (Section V-A of the paper): a regular-expression rule
// engine that conservatively filters the 60 abstract categories per
// erratum into auto-included, auto-excluded and undecided decisions, a
// syntax-highlighting engine that marks the text regions relevant to a
// category, and extractors for MSR names, workaround categories, fix
// statuses and the trivial/complex-condition flags.
//
// The paper reduced 67,680 classification decisions per human to 2,064
// with such conservative filtering; the remaining undecided pairs go to
// the simulated annotators of the annotate package.
package classify

import (
	"fmt"
	"regexp"
	"sync"

	"repro/internal/obs"
	"repro/internal/taxonomy"
	"repro/pkg/domain"
	"repro/pkg/pluginapi"
)

// rule holds the compiled patterns of one abstract category.
//
// Strong patterns are distinctive: a match is sufficient to auto-include
// the category. Weak patterns are suggestive: a match surfaces the
// category for human review (undecided) but never auto-includes.
type rule struct {
	category string
	kind     taxonomy.Kind
	strong   []*regexp.Regexp
	weak     []*regexp.Regexp
}

type ruleSpec struct {
	category string
	strong   []string
	weak     []string
}

func re(parts []string) ([]*regexp.Regexp, error) {
	out := make([]*regexp.Regexp, len(parts))
	for i, p := range parts {
		rx, err := regexp.Compile(`(?i)` + p)
		if err != nil {
			return nil, err
		}
		out[i] = rx
	}
	return out, nil
}

// defaultRules lazily compiles the default rule pack of the plugin
// registry, shared by every engine: constructing an engine must not
// recompile the ~200 base patterns. The compiled rules and kernels are
// immutable after the first use. Resolution is lazy — at first engine
// construction, not package initialization — so it cannot race the
// init-time plugin registration of the composition root.
var defaultRules struct {
	once    sync.Once
	rules   map[taxonomy.Kind][]rule
	kernels map[taxonomy.Kind]*kindKernel
	err     error
}

func baseCompiled() (map[taxonomy.Kind][]rule, map[taxonomy.Kind]*kindKernel) {
	defaultRules.once.Do(func() {
		pack, err := pluginapi.DefaultRulePack()
		if err != nil {
			defaultRules.err = fmt.Errorf("classify: %w", err)
			return
		}
		defaultRules.rules, defaultRules.kernels, defaultRules.err =
			compileRules(pack, taxonomy.Base())
	})
	if defaultRules.err != nil {
		panic(defaultRules.err)
	}
	return defaultRules.rules, defaultRules.kernels
}

// compileRules compiles a rule pack against a taxonomy scheme: every
// category must exist in the scheme and every pattern must be a valid
// regex. Rule order within a kind is preserved, so matched categories
// keep the pack's reporting order, and the multi-pattern kernels (see
// kernel.go) are built once per kind over the compiled rules.
func compileRules(pack pluginapi.RulePack, scheme domain.Scheme) (map[taxonomy.Kind][]rule, map[taxonomy.Kind]*kindKernel, error) {
	name := pack.Info().Name
	specs := make(map[taxonomy.Kind][]ruleSpec)
	rules := make(map[taxonomy.Kind][]rule)
	for _, s := range pack.Rules() {
		if int(s.Kind) < 0 || int(s.Kind) >= numKinds {
			return nil, nil, fmt.Errorf("classify: rule pack %q: rule %s has unknown kind %d", name, s.Category, int(s.Kind))
		}
		if _, ok := scheme.Category(s.Category); !ok {
			return nil, nil, fmt.Errorf("classify: rule pack %q: rule for unknown category %s", name, s.Category)
		}
		strong, err := re(s.Strong)
		if err != nil {
			return nil, nil, fmt.Errorf("classify: rule pack %q: category %s: %w", name, s.Category, err)
		}
		weak, err := re(s.Weak)
		if err != nil {
			return nil, nil, fmt.Errorf("classify: rule pack %q: category %s: %w", name, s.Category, err)
		}
		specs[s.Kind] = append(specs[s.Kind], ruleSpec{category: s.Category, strong: s.Strong, weak: s.Weak})
		rules[s.Kind] = append(rules[s.Kind], rule{
			category: s.Category,
			kind:     s.Kind,
			strong:   strong,
			weak:     weak,
		})
	}
	kernels := make(map[taxonomy.Kind]*kindKernel, len(specs))
	for kind, sp := range specs {
		kernels[kind] = buildKindKernel(rules[kind], sp)
	}
	return rules, kernels, nil
}

// Engine is a compiled rule engine over a taxonomy scheme.
type Engine struct {
	scheme  domain.Scheme
	rules   map[taxonomy.Kind][]rule
	kernels map[taxonomy.Kind]*kindKernel
	// catIDs caches the scheme's category ids so report initialization
	// does not rebuild the category slice per erratum.
	catIDs  []string
	cfg     Config
	memo    [numKinds]*memoCache // indexed by int(kind); nil when Memo off
	scratch sync.Pool            // *matchScratch

	// Instruments (nil when Config.Obs is nil; all obs instruments are
	// no-ops on nil receivers, so the hot path carries one branch).
	memoHits      *obs.Counter
	memoMisses    *obs.Counter
	prefCands     *obs.Counter
	prefConfirmed *obs.Counter
}

// Config selects the matching strategy. The zero value is the naive
// reference path: every pattern of every rule is evaluated against
// every segment. All configurations produce bit-identical Reports; the
// flags only trade build work for speed, and exist separately so the
// equivalence tests and the ablation benchmarks can isolate each layer.
type Config struct {
	// Prefilter routes segment matching through the Aho-Corasick
	// literal prefilter (internal/match): each segment is folded and
	// scanned once, and only the surviving candidate patterns run their
	// regexes.
	Prefilter bool
	// Memo caches per-clause match vectors in a bounded map, exploiting
	// the heavy clause reuse of templated errata.
	Memo bool
	// Obs, when non-nil, registers the engine's instruments in the
	// given registry: memo hit/miss/clear counts and prefilter
	// candidate-vs-confirm counts. Instrumentation never changes a
	// classification; it costs a few atomic adds per segment (measured
	// under 2% on BenchmarkClassifyEngine, see EXPERIMENTS.md).
	Obs *obs.Registry
}

// NewEngine returns an engine over the base rule set with the full
// matching kernel (prefilter + memoization) enabled.
func NewEngine() *Engine {
	return NewEngineConfig(Config{Prefilter: true, Memo: true})
}

// NewEngineConfig returns an engine over the default rule pack of the
// plugin registry with the given matching strategy. It panics when no
// default pack is registered (import repro/plugins/defaults) or the
// pack does not compile. Engines are safe for concurrent use.
func NewEngineConfig(cfg Config) *Engine {
	rules, kernels := baseCompiled()
	return newEngine(taxonomy.Base(), rules, kernels, cfg)
}

// NewEngineFor compiles an engine over an explicit rule pack and
// scheme, for callers that select plugins by name instead of using the
// registry default. A nil scheme selects the base taxonomy.
func NewEngineFor(pack pluginapi.RulePack, scheme domain.Scheme, cfg Config) (*Engine, error) {
	if scheme == nil {
		scheme = taxonomy.Base()
	}
	rules, kernels, err := compileRules(pack, scheme)
	if err != nil {
		return nil, err
	}
	return newEngine(scheme, rules, kernels, cfg), nil
}

func newEngine(scheme domain.Scheme, rules map[taxonomy.Kind][]rule, kernels map[taxonomy.Kind]*kindKernel, cfg Config) *Engine {
	e := &Engine{
		scheme:  scheme,
		rules:   rules,
		kernels: kernels,
		cfg:     cfg,
	}
	for _, cat := range e.scheme.AllCategories() {
		e.catIDs = append(e.catIDs, cat.ID)
	}
	if cfg.Obs != nil {
		e.memoHits = cfg.Obs.Counter("rememberr_classify_memo_hits_total",
			"Clause-memo lookups answered from the cache.")
		e.memoMisses = cfg.Obs.Counter("rememberr_classify_memo_misses_total",
			"Clause-memo lookups that fell through to matching.")
		e.prefCands = cfg.Obs.Counter("rememberr_classify_prefilter_candidates_total",
			"Patterns surviving the Aho-Corasick literal prefilter.")
		e.prefConfirmed = cfg.Obs.Counter("rememberr_classify_prefilter_confirmed_total",
			"Prefilter candidates confirmed by their full regex.")
	}
	if cfg.Memo {
		clears := cfg.Obs.Counter("rememberr_classify_memo_clears_total",
			"Clear-on-full resets of the clause memo.")
		for i := range e.memo {
			e.memo[i] = newMemoCache(memoMaxEntries, clears)
		}
	}
	maxRules := 0
	for _, rules := range e.rules {
		if len(rules) > maxRules {
			maxRules = len(rules)
		}
	}
	e.scratch.New = func() any {
		return &matchScratch{rules: make([]uint8, maxRules), cands: make([]int, 0, 64)}
	}
	return e
}

// Scheme returns the scheme the engine classifies against.
func (e *Engine) Scheme() domain.Scheme { return e.scheme }

// matchSegment evaluates every rule of a kind against one text segment
// and reports the strongly and weakly matched categories. The returned
// slices may be shared between reports (they can come from the memo
// cache) and must be treated as read-only.
func (e *Engine) matchSegment(kind taxonomy.Kind, text string) (strong, weak []string) {
	if e.cfg.Memo {
		if s, w, ok := e.memo[kind].get(text); ok {
			e.memoHits.Inc()
			return s, w
		}
		e.memoMisses.Inc()
	}
	if e.cfg.Prefilter {
		strong, weak = e.matchKernel(kind, text)
	} else {
		strong, weak = e.matchNaive(kind, text)
	}
	if e.cfg.Memo {
		e.memo[kind].put(text, strong, weak)
	}
	return strong, weak
}

// matchNaive is the reference path: every pattern of every rule runs
// against the segment. The kernel path must reproduce its output
// exactly.
func (e *Engine) matchNaive(kind taxonomy.Kind, text string) (strong, weak []string) {
	for _, r := range e.rules[kind] {
		matched := false
		for _, p := range r.strong {
			if p.MatchString(text) {
				strong = append(strong, r.category)
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		for _, p := range r.weak {
			if p.MatchString(text) {
				weak = append(weak, r.category)
				break
			}
		}
	}
	return strong, weak
}
