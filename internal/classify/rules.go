// Package classify implements RemembERR's software-assisted
// classification (Section V-A of the paper): a regular-expression rule
// engine that conservatively filters the 60 abstract categories per
// erratum into auto-included, auto-excluded and undecided decisions, a
// syntax-highlighting engine that marks the text regions relevant to a
// category, and extractors for MSR names, workaround categories, fix
// statuses and the trivial/complex-condition flags.
//
// The paper reduced 67,680 classification decisions per human to 2,064
// with such conservative filtering; the remaining undecided pairs go to
// the simulated annotators of the annotate package.
package classify

import (
	"regexp"
	"sync"

	"repro/internal/obs"
	"repro/internal/taxonomy"
)

// rule holds the compiled patterns of one abstract category.
//
// Strong patterns are distinctive: a match is sufficient to auto-include
// the category. Weak patterns are suggestive: a match surfaces the
// category for human review (undecided) but never auto-includes.
type rule struct {
	category string
	kind     taxonomy.Kind
	strong   []*regexp.Regexp
	weak     []*regexp.Regexp
}

type ruleSpec struct {
	category string
	strong   []string
	weak     []string
}

func re(parts []string) []*regexp.Regexp {
	out := make([]*regexp.Regexp, len(parts))
	for i, p := range parts {
		out[i] = regexp.MustCompile(`(?i)` + p)
	}
	return out
}

// triggerRules transcribes the trigger categories of Table IV into
// regex rules over trigger clauses.
var triggerRules = []ruleSpec{
	{"Trg_MBR_cbr",
		[]string{`cache line boundary`},
		[]string{`\bstraddles\b`, `\bunaligned\b`}},
	{"Trg_MBR_pgb",
		[]string{`page boundary`},
		[]string{`\bstraddles\b`, `two pages`}},
	{"Trg_MBR_mbr",
		[]string{`\bcanonical\b`, `memory map boundary`},
		[]string{`\bwraps\b`, `memory map`}},
	{"Trg_MOP_mmp",
		[]string{`memory-mapped`},
		[]string{`\bmapped\b`, `\baccess\b`}},
	{"Trg_MOP_atp",
		[]string{`\batomic\b`, `\btransactional\b`},
		[]string{`\blocked\b`, `read-modify-write`}},
	{"Trg_MOP_fen",
		[]string{`memory fence`, `serializing instruction`, `\bmfence\b`},
		[]string{`\bfence\b`}},
	{"Trg_MOP_seg",
		[]string{`\bsegment\b`},
		nil},
	{"Trg_MOP_ptw",
		[]string{`table walk`},
		[]string{`\bwalk\b`}},
	{"Trg_MOP_nst",
		[]string{`\bnested\b`},
		nil},
	{"Trg_MOP_flc",
		[]string{`flush instruction`, `flushed by an invalidation`},
		[]string{`\bflush`}},
	{"Trg_MOP_spe",
		[]string{`\bspeculat`},
		nil},
	{"Trg_FLT_ovf",
		[]string{`\boverflow`},
		nil},
	{"Trg_FLT_tmr",
		[]string{`\btimer\b`},
		nil},
	{"Trg_FLT_mca",
		[]string{`machine check exception is being delivered`, `machine check event is logged`},
		[]string{`\bmca\b`, `machine check`}},
	{"Trg_FLT_ill",
		[]string{`illegal instruction`, `undefined opcode`, `invalid instruction`},
		nil},
	{"Trg_PRV_ret",
		[]string{`\brsm\b`, `return from smm`},
		[]string{`resumes from`, `\bmanagement\b`}},
	{"Trg_PRV_vmt",
		[]string{`vm entry`, `vm exit`, `from hypervisor to guest`, `world switch`},
		[]string{`\bguest\b`, `\bhypervisor\b`}},
	{"Trg_CFG_pag",
		[]string{`paging mode`, `paging structure entry`, `paging mechanism`},
		[]string{`\bcr0\b`, `\bcr4\b`, `\bpaging\b`}},
	{"Trg_CFG_vmc",
		[]string{`\bvmcs\b`, `virtual machine control structure`, `virtualization control`},
		[]string{`\bvirtual machine\b`}},
	{"Trg_CFG_wrg",
		[]string{`\bwrmsr\b`, `model specific register with`, `msr write`},
		[]string{`configuration register`, `\bconfiguration\b`}},
	{"Trg_POW_pwc",
		[]string{`c6 power state`, `package power states`, `c-state`},
		[]string{`power state`, `\bpower\b`}},
	{"Trg_POW_tht",
		[]string{`\bthrottl`, `power supply conditions`, `thermal event`},
		[]string{`\bthermal\b`, `operating conditions`, `\bpower\b`}},
	{"Trg_EXT_rst",
		[]string{`\breset\b`},
		nil},
	{"Trg_EXT_pci",
		[]string{`\bpcie\b`, `pci express`},
		[]string{`peer-to-peer`, `\blink\b`}},
	{"Trg_EXT_usb",
		[]string{`\busb\b`, `\bxhci\b`},
		nil},
	{"Trg_EXT_ram",
		[]string{`dram configuration`, `ddr interface operates`},
		[]string{`\bdram\b`, `\bddr\b`, `memory is configured`}},
	{"Trg_EXT_iom",
		[]string{`\biommu\b`, `dma remapping`},
		[]string{`\bdevice\b`}},
	{"Trg_EXT_bus",
		[]string{`\bhypertransport\b`, `\bqpi\b`, `system bus`},
		[]string{`\bsnoop\b`}},
	{"Trg_FEA_fpu",
		[]string{`\bx87\b`, `\bfsave\b`, `floating-point`},
		nil},
	{"Trg_FEA_dbg",
		[]string{`\bbreakpoint\b`, `single-stepping`, `\bdebug\b`},
		[]string{`trap flag`}},
	{"Trg_FEA_cid",
		[]string{`\bcpuid\b`, `design identification`},
		nil},
	{"Trg_FEA_mon",
		[]string{`\bmonitor/mwait\b`, `monitored address`, `\bmwait\b`},
		nil},
	{"Trg_FEA_tra",
		[]string{`\btrace\b`, `\btracing\b`},
		nil},
	{"Trg_FEA_cus",
		[]string{`\bsse\b`, `\bmmx\b`},
		[]string{`extension feature`, `custom feature`, `specific feature`, `feature sequence`}},
}

// contextRules transcribes Table V over context clauses.
var contextRules = []ruleSpec{
	{"Ctx_PRV_boo",
		[]string{`\bbooting\b`, `\bbios\b`, `\buefi\b`, `\bfirmware\b`},
		nil},
	{"Ctx_PRV_vmg",
		[]string{`\bguest\b`},
		nil},
	{"Ctx_PRV_rea",
		[]string{`real-address mode`, `real mode`, `real-mode`, `virtual-8086`},
		nil},
	{"Ctx_PRV_vmh",
		[]string{`\bhypervisor\b`, `vmx root`, `host mode`},
		[]string{`virtual machine`}},
	{"Ctx_PRV_smm",
		[]string{`system management mode`, `\bsmm\b`, `management mode`},
		[]string{`\bmode\b`}},
	{"Ctx_FEA_sec",
		[]string{`\bsgx\b`, `\bsvm\b`, `\bsecurity\b`, `secure enclave`},
		nil},
	{"Ctx_FEA_sgc",
		[]string{`single-core`, `one core`, `single active core`},
		nil},
	{"Ctx_PHY_pkg",
		[]string{`\bpackage\b`, `ball-out`},
		nil},
	{"Ctx_PHY_tmp",
		[]string{`\btemperature\b`},
		nil},
	{"Ctx_PHY_vol",
		[]string{`\bvoltage\b`},
		nil},
}

// effectRules transcribes Table VI over effect clauses.
var effectRules = []ruleSpec{
	{"Eff_HNG_unp",
		[]string{`\bunpredictable\b`, `behave unexpectedly`, `results of the operation may be incorrect`},
		[]string{`\bincorrect\b`, `\bunexpected`, `system may`}},
	{"Eff_HNG_hng",
		[]string{`\bhang\b`, `stop responding`},
		nil},
	{"Eff_HNG_crh",
		[]string{`\bcrash\b`, `\bunrecoverable\b`, `go down`},
		[]string{`may fail`}},
	{"Eff_HNG_boo",
		[]string{`\bboot\b`, `\bpost\b`},
		nil},
	{"Eff_FLT_mca",
		[]string{`machine check exception may be signaled`, `mca error may be reported`, `machine check architecture`},
		[]string{`machine check`}},
	{"Eff_FLT_unc",
		[]string{`\buncorrectable\b`, `\buncorrected\b`},
		nil},
	{"Eff_FLT_fsp",
		[]string{`\bspurious\b`, `unexpected exception`},
		[]string{`\bfaults?\b`}},
	{"Eff_FLT_fms",
		[]string{`fault may be missing`, `may not be delivered`, `may be suppressed`},
		[]string{`\bmissing\b`}},
	{"Eff_FLT_fid",
		[]string{`wrong error code`, `fault identifier`, `wrong order`},
		[]string{`\bordering\b`}},
	{"Eff_CRP_prf",
		[]string{`performance counter`, `performance monitoring`},
		[]string{`counter value`}},
	{"Eff_CRP_reg",
		[]string{`msr may contain`, `model specific register may be corrupted`},
		[]string{`register state`, `wrong value`, `\bregister\b`}},
	{"Eff_EXT_pci",
		[]string{`malformed transactions`, `pcie link`, `protocol violations`},
		[]string{`\bpcie\b`}},
	{"Eff_EXT_usb",
		[]string{`\busb\b`},
		nil},
	{"Eff_EXT_mmd",
		[]string{`\baudio\b`, `\bgraphics\b`, `display artifacts`, `\bmultimedia\b`},
		nil},
	{"Eff_EXT_ram",
		[]string{`dram interactions`, `memory training`, `ddr interface may`},
		[]string{`\bdram\b`, `\bddr\b`}},
	{"Eff_EXT_pow",
		[]string{`power consumption`, `excessive power`},
		[]string{`\bpower\b`}},
}

// baseSpecs maps each kind to its rule specifications.
var baseSpecs = map[taxonomy.Kind][]ruleSpec{
	taxonomy.Trigger: triggerRules,
	taxonomy.Context: contextRules,
	taxonomy.Effect:  effectRules,
}

// baseRules holds the compiled base rule set, shared by every engine:
// constructing an engine must not recompile the ~200 base patterns.
// The slices and regexes are immutable after package initialization.
var baseRules = func() map[taxonomy.Kind][]rule {
	scheme := taxonomy.Base()
	rules := make(map[taxonomy.Kind][]rule, len(baseSpecs))
	for kind, specs := range baseSpecs {
		for _, s := range specs {
			if _, ok := scheme.Category(s.category); !ok {
				panic("classify: rule for unknown category " + s.category)
			}
			rules[kind] = append(rules[kind], rule{
				category: s.category,
				kind:     kind,
				strong:   re(s.strong),
				weak:     re(s.weak),
			})
		}
	}
	return rules
}()

// baseKernels holds the multi-pattern matching kernels, one per kind,
// built once over the compiled base rules (see kernel.go).
var baseKernels = func() map[taxonomy.Kind]*kindKernel {
	kernels := make(map[taxonomy.Kind]*kindKernel, len(baseSpecs))
	for kind, specs := range baseSpecs {
		kernels[kind] = buildKindKernel(baseRules[kind], specs)
	}
	return kernels
}()

// Engine is a compiled rule engine over a taxonomy scheme.
type Engine struct {
	scheme  *taxonomy.Scheme
	rules   map[taxonomy.Kind][]rule
	kernels map[taxonomy.Kind]*kindKernel
	// catIDs caches the scheme's category ids so report initialization
	// does not rebuild the category slice per erratum.
	catIDs  []string
	cfg     Config
	memo    [numKinds]*memoCache // indexed by int(kind); nil when Memo off
	scratch sync.Pool            // *matchScratch

	// Instruments (nil when Config.Obs is nil; all obs instruments are
	// no-ops on nil receivers, so the hot path carries one branch).
	memoHits      *obs.Counter
	memoMisses    *obs.Counter
	prefCands     *obs.Counter
	prefConfirmed *obs.Counter
}

// Config selects the matching strategy. The zero value is the naive
// reference path: every pattern of every rule is evaluated against
// every segment. All configurations produce bit-identical Reports; the
// flags only trade build work for speed, and exist separately so the
// equivalence tests and the ablation benchmarks can isolate each layer.
type Config struct {
	// Prefilter routes segment matching through the Aho-Corasick
	// literal prefilter (internal/match): each segment is folded and
	// scanned once, and only the surviving candidate patterns run their
	// regexes.
	Prefilter bool
	// Memo caches per-clause match vectors in a bounded map, exploiting
	// the heavy clause reuse of templated errata.
	Memo bool
	// Obs, when non-nil, registers the engine's instruments in the
	// given registry: memo hit/miss/clear counts and prefilter
	// candidate-vs-confirm counts. Instrumentation never changes a
	// classification; it costs a few atomic adds per segment (measured
	// under 2% on BenchmarkClassifyEngine, see EXPERIMENTS.md).
	Obs *obs.Registry
}

// NewEngine returns an engine over the base rule set with the full
// matching kernel (prefilter + memoization) enabled.
func NewEngine() *Engine {
	return NewEngineConfig(Config{Prefilter: true, Memo: true})
}

// NewEngineConfig returns an engine over the base rule set with the
// given matching strategy. Engines are safe for concurrent use.
func NewEngineConfig(cfg Config) *Engine {
	e := &Engine{
		scheme:  taxonomy.Base(),
		rules:   baseRules,
		kernels: baseKernels,
		cfg:     cfg,
	}
	for _, cat := range e.scheme.AllCategories() {
		e.catIDs = append(e.catIDs, cat.ID)
	}
	if cfg.Obs != nil {
		e.memoHits = cfg.Obs.Counter("rememberr_classify_memo_hits_total",
			"Clause-memo lookups answered from the cache.")
		e.memoMisses = cfg.Obs.Counter("rememberr_classify_memo_misses_total",
			"Clause-memo lookups that fell through to matching.")
		e.prefCands = cfg.Obs.Counter("rememberr_classify_prefilter_candidates_total",
			"Patterns surviving the Aho-Corasick literal prefilter.")
		e.prefConfirmed = cfg.Obs.Counter("rememberr_classify_prefilter_confirmed_total",
			"Prefilter candidates confirmed by their full regex.")
	}
	if cfg.Memo {
		clears := cfg.Obs.Counter("rememberr_classify_memo_clears_total",
			"Clear-on-full resets of the clause memo.")
		for i := range e.memo {
			e.memo[i] = newMemoCache(memoMaxEntries, clears)
		}
	}
	maxRules := 0
	for _, rules := range e.rules {
		if len(rules) > maxRules {
			maxRules = len(rules)
		}
	}
	e.scratch.New = func() any {
		return &matchScratch{rules: make([]uint8, maxRules), cands: make([]int, 0, 64)}
	}
	return e
}

// Scheme returns the scheme the engine classifies against.
func (e *Engine) Scheme() *taxonomy.Scheme { return e.scheme }

// matchSegment evaluates every rule of a kind against one text segment
// and reports the strongly and weakly matched categories. The returned
// slices may be shared between reports (they can come from the memo
// cache) and must be treated as read-only.
func (e *Engine) matchSegment(kind taxonomy.Kind, text string) (strong, weak []string) {
	if e.cfg.Memo {
		if s, w, ok := e.memo[kind].get(text); ok {
			e.memoHits.Inc()
			return s, w
		}
		e.memoMisses.Inc()
	}
	if e.cfg.Prefilter {
		strong, weak = e.matchKernel(kind, text)
	} else {
		strong, weak = e.matchNaive(kind, text)
	}
	if e.cfg.Memo {
		e.memo[kind].put(text, strong, weak)
	}
	return strong, weak
}

// matchNaive is the reference path: every pattern of every rule runs
// against the segment. The kernel path must reproduce its output
// exactly.
func (e *Engine) matchNaive(kind taxonomy.Kind, text string) (strong, weak []string) {
	for _, r := range e.rules[kind] {
		matched := false
		for _, p := range r.strong {
			if p.MatchString(text) {
				strong = append(strong, r.category)
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		for _, p := range r.weak {
			if p.MatchString(text) {
				weak = append(weak, r.category)
				break
			}
		}
	}
	return strong, weak
}
