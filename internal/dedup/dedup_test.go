package dedup

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/specdoc"
	"repro/internal/textsim"
)

func buildSmallDB(t *testing.T) *core.Database {
	t.Helper()
	db := core.NewDatabase()
	docs := []*core.Document{
		{
			Key: "intel-01d", Vendor: core.Intel, Label: "1 (D)", Order: 0, GenIndex: 1,
			Errata: []*core.Erratum{
				{DocKey: "intel-01d", ID: "AAJ001", Seq: 1, Title: "Processor May Hang During Power State Transitions"},
				{DocKey: "intel-01d", ID: "AAJ002", Seq: 2, Title: "Counter May Report Wrong Values"},
			},
		},
		{
			Key: "intel-02d", Vendor: core.Intel, Label: "2 (D)", Order: 2, GenIndex: 2,
			Errata: []*core.Erratum{
				// Exact duplicate of AAJ001 (modulo case/punctuation).
				{DocKey: "intel-02d", ID: "BJ001", Seq: 1, Title: "Processor may hang during power state transitions."},
				// Near-duplicate of AAJ002, needs manual confirmation.
				{DocKey: "intel-02d", ID: "BJ002", Seq: 2, Title: "Counter Might Report Wrong Values"},
				// Unrelated.
				{DocKey: "intel-02d", ID: "BJ003", Seq: 3, Title: "USB Controller Drops Packets"},
			},
		},
		{
			Key: "amd-17h-00", Vendor: core.AMD, Label: "17h 00-0F", Order: 0,
			Errata: []*core.Erratum{
				{DocKey: "amd-17h-00", ID: "1001", Seq: 1, Title: "Hang Under Contention"},
				{DocKey: "amd-17h-00", ID: "1002", Seq: 2, Title: "Wrong IBS Data"},
			},
		},
		{
			Key: "amd-19h-00", Vendor: core.AMD, Label: "19h 00-0F", Order: 1,
			Errata: []*core.Erratum{
				{DocKey: "amd-19h-00", ID: "1001", Seq: 1, Title: "Hang Under Contention"},
				{DocKey: "amd-19h-00", ID: "1003", Seq: 2, Title: "Fresh Bug"},
			},
		},
	}
	for _, d := range docs {
		if err := db.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestDedupAMDByID(t *testing.T) {
	db := buildSmallDB(t)
	res, err := Deduplicate(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueAMD != 3 {
		t.Errorf("AMD unique = %d, want 3", res.UniqueAMD)
	}
	a := db.Docs["amd-17h-00"].Erratum("1001")
	b := db.Docs["amd-19h-00"].Erratum("1001")
	if a.Key != b.Key || a.Key != "A-1001" {
		t.Errorf("AMD shared-ID keys = (%q,%q)", a.Key, b.Key)
	}
}

func TestDedupIntelExactTitle(t *testing.T) {
	db := buildSmallDB(t)
	res, err := Deduplicate(db, Options{}) // no oracle: exact titles only
	if err != nil {
		t.Fatal(err)
	}
	// 5 Intel entries, one exact-title pair -> 4 clusters.
	if res.UniqueIntel != 4 {
		t.Errorf("Intel unique = %d, want 4", res.UniqueIntel)
	}
	a := db.Docs["intel-01d"].Erratum("AAJ001")
	b := db.Docs["intel-02d"].Erratum("BJ001")
	if a.Key == "" || a.Key != b.Key {
		t.Errorf("exact-title pair keys = (%q,%q)", a.Key, b.Key)
	}
	// The near-duplicate must NOT be merged without an oracle.
	c := db.Docs["intel-01d"].Erratum("AAJ002")
	d := db.Docs["intel-02d"].Erratum("BJ002")
	if c.Key == d.Key {
		t.Error("near-duplicate merged without oracle")
	}
}

func TestDedupIntelWithOracle(t *testing.T) {
	db := buildSmallDB(t)
	oracle := func(a, b *core.Erratum) bool {
		// Confirm only the Counter pair.
		return (a.ID == "AAJ002" && b.ID == "BJ002") || (a.ID == "BJ002" && b.ID == "AAJ002")
	}
	res, err := Deduplicate(db, Options{Oracle: oracle, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueIntel != 3 {
		t.Errorf("Intel unique = %d, want 3", res.UniqueIntel)
	}
	if res.ConfirmedPairs != 1 {
		t.Errorf("confirmed pairs = %d, want 1", res.ConfirmedPairs)
	}
	c := db.Docs["intel-01d"].Erratum("AAJ002")
	d := db.Docs["intel-02d"].Erratum("BJ002")
	if c.Key != d.Key {
		t.Error("oracle-confirmed pair not merged")
	}
	// Representative key comes from the earliest document.
	if c.Key != d.Key || c.Key == "" {
		t.Errorf("keys = (%q,%q)", c.Key, d.Key)
	}
}

func TestKeyStability(t *testing.T) {
	db1 := buildSmallDB(t)
	db2 := buildSmallDB(t)
	if _, err := Deduplicate(db1, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Deduplicate(db2, Options{}); err != nil {
		t.Fatal(err)
	}
	e1 := db1.Errata()
	e2 := db2.Errata()
	for i := range e1 {
		if e1[i].Key != e2[i].Key {
			t.Fatalf("key instability at %s: %q vs %q", e1[i].FullID(), e1[i].Key, e2[i].Key)
		}
	}
}

// TestFullCorpusDedup runs the complete pipeline segment: generate ->
// render -> parse -> deduplicate, and checks the paper's unique counts.
func TestFullCorpusDedup(t *testing.T) {
	gt, err := corpus.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	db, _, err := specdoc.ParseAll(texts)
	if err != nil {
		t.Fatal(err)
	}

	// Ground-truth oracle: the simulated manual inspection. Entries are
	// identified by document key and sequence.
	truth := make(map[string]string)
	for _, e := range gt.DB.Errata() {
		truth[corpus.EntryRef(e)] = e.Key
	}
	oracle := func(a, b *core.Erratum) bool {
		return truth[corpus.EntryRef(a)] == truth[corpus.EntryRef(b)] &&
			truth[corpus.EntryRef(a)] != ""
	}

	res, err := Deduplicate(db, Options{Oracle: oracle})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueIntel != corpus.TargetIntelUnique {
		t.Errorf("Intel unique = %d, want %d", res.UniqueIntel, corpus.TargetIntelUnique)
	}
	if res.UniqueAMD != corpus.TargetAMDUnique {
		t.Errorf("AMD unique = %d, want %d", res.UniqueAMD, corpus.TargetAMDUnique)
	}
	if res.ConfirmedPairs != 29 {
		t.Errorf("confirmed pairs = %d, want 29 (the paper's manual count)", res.ConfirmedPairs)
	}

	// Recovered clustering must match the ground truth exactly: two
	// entries share a recovered key iff they share a lineage.
	keyToLineage := make(map[string]string)
	for _, e := range db.Errata() {
		lin := truth[corpus.EntryRef(e)]
		if prev, ok := keyToLineage[e.Key]; ok && prev != lin {
			t.Fatalf("cluster %s mixes lineages %s and %s", e.Key, prev, lin)
		}
		keyToLineage[e.Key] = lin
	}
	lineageToKey := make(map[string]string)
	for _, e := range db.Errata() {
		lin := truth[corpus.EntryRef(e)]
		if prev, ok := lineageToKey[lin]; ok && prev != e.Key {
			t.Fatalf("lineage %s split into clusters %s and %s", lin, prev, e.Key)
		}
		lineageToKey[lin] = e.Key
	}
}

func TestDSUBasics(t *testing.T) {
	d := NewDSU(5)
	if d.Sets() != 5 {
		t.Fatalf("initial sets = %d", d.Sets())
	}
	if !d.Union(0, 1) || !d.Union(2, 3) || !d.Union(1, 2) {
		t.Fatal("unions failed")
	}
	if d.Union(0, 3) {
		t.Error("union of same set returned true")
	}
	if d.Sets() != 2 {
		t.Errorf("sets = %d, want 2", d.Sets())
	}
	if d.SizeOf(1) != 4 || d.SizeOf(4) != 1 {
		t.Errorf("sizes = (%d,%d)", d.SizeOf(1), d.SizeOf(4))
	}
	if d.Find(0) != d.Find(3) || d.Find(0) == d.Find(4) {
		t.Error("find results inconsistent")
	}
}

// Property: after any sequence of unions, Find is consistent (two
// elements united transitively share a root) and set count plus total
// merges equals n.
func TestPropertyDSU(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 64
		d := NewDSU(n)
		merges := 0
		type pr struct{ a, b int }
		var applied []pr
		for _, p := range pairs {
			a, b := int(p%n), int((p/n)%n)
			if d.Union(a, b) {
				merges++
			}
			applied = append(applied, pr{a, b})
		}
		if d.Sets()+merges != n {
			return false
		}
		for _, p := range applied {
			if d.Find(p.a) != d.Find(p.b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSimilarityMetricsOptions(t *testing.T) {
	db := buildSmallDB(t)
	for _, m := range []textsim.Metric{textsim.MetricJaccard, textsim.MetricDice, textsim.MetricLevenshtein} {
		db2 := buildSmallDB(t)
		if _, err := Deduplicate(db2, Options{Metric: m}); err != nil {
			t.Errorf("metric %s: %v", m, err)
		}
	}
	_ = db
}

func TestMaxReviews(t *testing.T) {
	db := buildSmallDB(t)
	calls := 0
	oracle := func(a, b *core.Erratum) bool { calls++; return false }
	res, err := Deduplicate(db, Options{Oracle: oracle, Threshold: 0.1, MaxReviews: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reviewed) != 1 || calls != 1 {
		t.Errorf("reviews = %d, oracle calls = %d, want 1 each", len(res.Reviewed), calls)
	}
}

// TestLSHMatchesExactOnFullCorpus runs the full-corpus dedup through
// the LSH candidate generator and checks it recovers the same unique
// counts and confirmed pairs as the exact scan.
func TestLSHMatchesExactOnFullCorpus(t *testing.T) {
	gt, err := corpus.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	truth := make(map[string]string)
	for _, e := range gt.DB.Errata() {
		truth[corpus.EntryRef(e)] = e.Key
	}
	oracle := func(a, b *core.Erratum) bool {
		return truth[corpus.EntryRef(a)] != "" &&
			truth[corpus.EntryRef(a)] == truth[corpus.EntryRef(b)]
	}

	db, _, err := specdoc.ParseAll(texts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Deduplicate(db, Options{Oracle: oracle, UseLSH: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueIntel != corpus.TargetIntelUnique {
		t.Errorf("LSH unique Intel = %d, want %d", res.UniqueIntel, corpus.TargetIntelUnique)
	}
	if res.ConfirmedPairs != 29 {
		t.Errorf("LSH confirmed pairs = %d, want 29", res.ConfirmedPairs)
	}
	// The LSH path reviews far fewer than the exact candidate volume
	// would at a low threshold, but every reviewed pair must be genuine
	// (score at or above the threshold).
	for _, p := range res.Reviewed {
		if p.Score < 0.6 {
			t.Errorf("reviewed pair below threshold: %v", p.Score)
		}
	}
}
