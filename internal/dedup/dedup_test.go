package dedup

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/specdoc"
	"repro/internal/textsim"
	corpusprofile "repro/plugins/corpusprofile/intelamd"
)

func buildSmallDB(t *testing.T) *core.Database {
	t.Helper()
	db := core.NewDatabase()
	docs := []*core.Document{
		{
			Key: "intel-01d", Vendor: core.Intel, Label: "1 (D)", Order: 0, GenIndex: 1,
			Errata: []*core.Erratum{
				{DocKey: "intel-01d", ID: "AAJ001", Seq: 1, Title: "Processor May Hang During Power State Transitions"},
				{DocKey: "intel-01d", ID: "AAJ002", Seq: 2, Title: "Counter May Report Wrong Values"},
			},
		},
		{
			Key: "intel-02d", Vendor: core.Intel, Label: "2 (D)", Order: 2, GenIndex: 2,
			Errata: []*core.Erratum{
				// Exact duplicate of AAJ001 (modulo case/punctuation).
				{DocKey: "intel-02d", ID: "BJ001", Seq: 1, Title: "Processor may hang during power state transitions."},
				// Near-duplicate of AAJ002, needs manual confirmation.
				{DocKey: "intel-02d", ID: "BJ002", Seq: 2, Title: "Counter Might Report Wrong Values"},
				// Unrelated.
				{DocKey: "intel-02d", ID: "BJ003", Seq: 3, Title: "USB Controller Drops Packets"},
			},
		},
		{
			Key: "amd-17h-00", Vendor: core.AMD, Label: "17h 00-0F", Order: 0,
			Errata: []*core.Erratum{
				{DocKey: "amd-17h-00", ID: "1001", Seq: 1, Title: "Hang Under Contention"},
				{DocKey: "amd-17h-00", ID: "1002", Seq: 2, Title: "Wrong IBS Data"},
			},
		},
		{
			Key: "amd-19h-00", Vendor: core.AMD, Label: "19h 00-0F", Order: 1,
			Errata: []*core.Erratum{
				{DocKey: "amd-19h-00", ID: "1001", Seq: 1, Title: "Hang Under Contention"},
				{DocKey: "amd-19h-00", ID: "1003", Seq: 2, Title: "Fresh Bug"},
			},
		},
	}
	for _, d := range docs {
		if err := db.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestDedupAMDByID(t *testing.T) {
	db := buildSmallDB(t)
	res, err := Deduplicate(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueAMD != 3 {
		t.Errorf("AMD unique = %d, want 3", res.UniqueAMD)
	}
	a := db.Docs["amd-17h-00"].Erratum("1001")
	b := db.Docs["amd-19h-00"].Erratum("1001")
	if a.Key != b.Key || a.Key != "A-1001" {
		t.Errorf("AMD shared-ID keys = (%q,%q)", a.Key, b.Key)
	}
}

func TestDedupIntelExactTitle(t *testing.T) {
	db := buildSmallDB(t)
	res, err := Deduplicate(db, Options{}) // no oracle: exact titles only
	if err != nil {
		t.Fatal(err)
	}
	// 5 Intel entries, one exact-title pair -> 4 clusters.
	if res.UniqueIntel != 4 {
		t.Errorf("Intel unique = %d, want 4", res.UniqueIntel)
	}
	a := db.Docs["intel-01d"].Erratum("AAJ001")
	b := db.Docs["intel-02d"].Erratum("BJ001")
	if a.Key == "" || a.Key != b.Key {
		t.Errorf("exact-title pair keys = (%q,%q)", a.Key, b.Key)
	}
	// The near-duplicate must NOT be merged without an oracle.
	c := db.Docs["intel-01d"].Erratum("AAJ002")
	d := db.Docs["intel-02d"].Erratum("BJ002")
	if c.Key == d.Key {
		t.Error("near-duplicate merged without oracle")
	}
}

func TestDedupIntelWithOracle(t *testing.T) {
	db := buildSmallDB(t)
	oracle := func(a, b *core.Erratum) bool {
		// Confirm only the Counter pair.
		return (a.ID == "AAJ002" && b.ID == "BJ002") || (a.ID == "BJ002" && b.ID == "AAJ002")
	}
	res, err := Deduplicate(db, Options{Oracle: oracle, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueIntel != 3 {
		t.Errorf("Intel unique = %d, want 3", res.UniqueIntel)
	}
	if res.ConfirmedPairs != 1 {
		t.Errorf("confirmed pairs = %d, want 1", res.ConfirmedPairs)
	}
	c := db.Docs["intel-01d"].Erratum("AAJ002")
	d := db.Docs["intel-02d"].Erratum("BJ002")
	if c.Key != d.Key {
		t.Error("oracle-confirmed pair not merged")
	}
	// Representative key comes from the earliest document.
	if c.Key != d.Key || c.Key == "" {
		t.Errorf("keys = (%q,%q)", c.Key, d.Key)
	}
}

func TestKeyStability(t *testing.T) {
	db1 := buildSmallDB(t)
	db2 := buildSmallDB(t)
	if _, err := Deduplicate(db1, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Deduplicate(db2, Options{}); err != nil {
		t.Fatal(err)
	}
	e1 := db1.Errata()
	e2 := db2.Errata()
	for i := range e1 {
		if e1[i].Key != e2[i].Key {
			t.Fatalf("key instability at %s: %q vs %q", e1[i].FullID(), e1[i].Key, e2[i].Key)
		}
	}
}

// TestFullCorpusDedup runs the complete pipeline segment: generate ->
// render -> parse -> deduplicate, and checks the paper's unique counts.
func TestFullCorpusDedup(t *testing.T) {
	gt, err := corpus.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	db, _, err := specdoc.ParseAll(texts)
	if err != nil {
		t.Fatal(err)
	}

	// Ground-truth oracle: the simulated manual inspection. Entries are
	// identified by document key and sequence.
	truth := make(map[string]string)
	for _, e := range gt.DB.Errata() {
		truth[corpus.EntryRef(e)] = e.Key
	}
	oracle := func(a, b *core.Erratum) bool {
		return truth[corpus.EntryRef(a)] == truth[corpus.EntryRef(b)] &&
			truth[corpus.EntryRef(a)] != ""
	}

	res, err := Deduplicate(db, Options{Oracle: oracle})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueIntel != corpusprofile.TargetIntelUnique {
		t.Errorf("Intel unique = %d, want %d", res.UniqueIntel, corpusprofile.TargetIntelUnique)
	}
	if res.UniqueAMD != corpusprofile.TargetAMDUnique {
		t.Errorf("AMD unique = %d, want %d", res.UniqueAMD, corpusprofile.TargetAMDUnique)
	}
	if res.ConfirmedPairs != 29 {
		t.Errorf("confirmed pairs = %d, want 29 (the paper's manual count)", res.ConfirmedPairs)
	}

	// Recovered clustering must match the ground truth exactly: two
	// entries share a recovered key iff they share a lineage.
	keyToLineage := make(map[string]string)
	for _, e := range db.Errata() {
		lin := truth[corpus.EntryRef(e)]
		if prev, ok := keyToLineage[e.Key]; ok && prev != lin {
			t.Fatalf("cluster %s mixes lineages %s and %s", e.Key, prev, lin)
		}
		keyToLineage[e.Key] = lin
	}
	lineageToKey := make(map[string]string)
	for _, e := range db.Errata() {
		lin := truth[corpus.EntryRef(e)]
		if prev, ok := lineageToKey[lin]; ok && prev != e.Key {
			t.Fatalf("lineage %s split into clusters %s and %s", lin, prev, e.Key)
		}
		lineageToKey[lin] = e.Key
	}
}

func TestDSUBasics(t *testing.T) {
	d := NewDSU(5)
	if d.Sets() != 5 {
		t.Fatalf("initial sets = %d", d.Sets())
	}
	if !d.Union(0, 1) || !d.Union(2, 3) || !d.Union(1, 2) {
		t.Fatal("unions failed")
	}
	if d.Union(0, 3) {
		t.Error("union of same set returned true")
	}
	if d.Sets() != 2 {
		t.Errorf("sets = %d, want 2", d.Sets())
	}
	if d.SizeOf(1) != 4 || d.SizeOf(4) != 1 {
		t.Errorf("sizes = (%d,%d)", d.SizeOf(1), d.SizeOf(4))
	}
	if d.Find(0) != d.Find(3) || d.Find(0) == d.Find(4) {
		t.Error("find results inconsistent")
	}
}

// Property: after any sequence of unions, Find is consistent (two
// elements united transitively share a root) and set count plus total
// merges equals n.
func TestPropertyDSU(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 64
		d := NewDSU(n)
		merges := 0
		type pr struct{ a, b int }
		var applied []pr
		for _, p := range pairs {
			a, b := int(p%n), int((p/n)%n)
			if d.Union(a, b) {
				merges++
			}
			applied = append(applied, pr{a, b})
		}
		if d.Sets()+merges != n {
			return false
		}
		for _, p := range applied {
			if d.Find(p.a) != d.Find(p.b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSimilarityMetricsOptions(t *testing.T) {
	db := buildSmallDB(t)
	for _, m := range []textsim.Metric{textsim.MetricJaccard, textsim.MetricDice, textsim.MetricLevenshtein} {
		db2 := buildSmallDB(t)
		if _, err := Deduplicate(db2, Options{Metric: m}); err != nil {
			t.Errorf("metric %s: %v", m, err)
		}
	}
	_ = db
}

// TestExplicitZeroThreshold is the regression test for the zero-value
// option footgun: a caller explicitly asking for threshold 0 must get
// every candidate pair reviewed, not the silent 0.6 default.
func TestExplicitZeroThreshold(t *testing.T) {
	db := buildSmallDB(t)
	calls := 0
	oracle := func(a, b *core.Erratum) bool { calls++; return false }
	opts := Options{Oracle: oracle}
	opts.SetThreshold(0)
	res, err := Deduplicate(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 1 merges the exact-title pair, leaving 4 Intel
	// representatives; threshold 0 must surface all C(4,2) = 6 pairs.
	if len(res.Reviewed) != 6 || calls != 6 {
		t.Errorf("reviews = %d, oracle calls = %d, want 6 each (every candidate pair)", len(res.Reviewed), calls)
	}

	// The plain zero value must keep selecting the 0.6 default: the
	// disjoint-title pairs fall below it and only the near-duplicate
	// Counter pair is surfaced.
	db2 := buildSmallDB(t)
	calls = 0
	res2, err := Deduplicate(db2, Options{Oracle: oracle})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Reviewed) >= 6 {
		t.Errorf("zero-value Threshold reviewed %d pairs; default 0.6 no longer applied", len(res2.Reviewed))
	}
	for _, p := range res2.Reviewed {
		if p.Score < 0.6 {
			t.Errorf("zero-value Threshold surfaced pair below default threshold: %v", p.Score)
		}
	}
}

func TestMaxReviews(t *testing.T) {
	db := buildSmallDB(t)
	calls := 0
	oracle := func(a, b *core.Erratum) bool { calls++; return false }
	res, err := Deduplicate(db, Options{Oracle: oracle, Threshold: 0.1, MaxReviews: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reviewed) != 1 || calls != 1 {
		t.Errorf("reviews = %d, oracle calls = %d, want 1 each", len(res.Reviewed), calls)
	}
}

// TestMaxReviewsSkipsDontCount pins two properties of the stage-2
// review loop: MaxReviews caps *oracle consultations*, and pairs
// skipped because they were already merged transitively do not consume
// the cap.
//
// Four entries with pairwise-equal similarity score review in index
// order: (A,B), (A,C), (A,D), (B,C), (B,D), (C,D). The oracle confirms
// (A,B) and (A,C), which merges {A,B,C}; (B,C) is then skipped
// transitively without consulting the oracle. With MaxReviews = 4 the
// loop must still reach (B,D) — the skip is free — for exactly 4
// consultations.
func TestMaxReviewsSkipsDontCount(t *testing.T) {
	db := core.NewDatabase()
	// Eight shared tokens plus one unique token per title: every pair
	// has Jaccard 8/10 = 0.8 and a distinct normalized title.
	common := "alpha beta gamma delta epsilon zeta eta theta"
	doc := &core.Document{
		Key: "intel-01d", Vendor: core.Intel, Label: "1 (D)", Order: 0, GenIndex: 1,
		Errata: []*core.Erratum{
			{DocKey: "intel-01d", ID: "AAJ001", Seq: 1, Title: common + " one"},
			{DocKey: "intel-01d", ID: "AAJ002", Seq: 2, Title: common + " two"},
			{DocKey: "intel-01d", ID: "AAJ003", Seq: 3, Title: common + " three"},
			{DocKey: "intel-01d", ID: "AAJ004", Seq: 4, Title: common + " four"},
		},
	}
	if err := db.Add(doc); err != nil {
		t.Fatal(err)
	}
	calls := 0
	oracle := func(a, b *core.Erratum) bool {
		calls++
		pair := a.ID + "/" + b.ID
		return pair == "AAJ001/AAJ002" || pair == "AAJ001/AAJ003"
	}
	res, err := Deduplicate(db, Options{Oracle: oracle, Threshold: 0.7, MaxReviews: 4})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || len(res.Reviewed) != 4 {
		t.Fatalf("oracle calls = %d, reviews = %d, want 4 each", calls, len(res.Reviewed))
	}
	last := res.Reviewed[3]
	if last.A.ID != "AAJ002" || last.B.ID != "AAJ004" {
		t.Errorf("4th review = (%s,%s), want (AAJ002,AAJ004): the transitive skip of (AAJ002,AAJ003) must not consume the cap",
			last.A.ID, last.B.ID)
	}
	if res.ConfirmedPairs != 2 {
		t.Errorf("confirmed = %d, want 2", res.ConfirmedPairs)
	}
}

// TestRepresentativesHaveDistinctNorms documents why the candidate
// generators need no identical-normalized-title guard: stage 1 unions
// every pair of entries with equal normalized titles, so the cluster
// representatives fed to stage 2 always carry pairwise-distinct
// normalized titles.
func TestRepresentativesHaveDistinctNorms(t *testing.T) {
	titles := []string{
		"Processor May Hang",
		"processor MAY hang!!", // same normalized title as 0
		"Counter Reports Wrong Values",
		"counter reports wrong values.", // same normalized title as 2
		"USB Controller Drops Packets",
	}
	dsu := NewDSU(len(titles))
	byTitle := make(map[string][]int)
	norms := make([]string, len(titles))
	for i, title := range titles {
		n := textsim.Normalize(title)
		norms[i] = n
		byTitle[n] = append(byTitle[n], i)
	}
	for _, idxs := range byTitle {
		for i := 1; i < len(idxs); i++ {
			dsu.Union(idxs[0], idxs[i])
		}
	}
	reps := clusterRepresentatives(dsu, len(titles))
	if len(reps) != 3 {
		t.Fatalf("representatives = %d, want 3", len(reps))
	}
	seen := make(map[string]int)
	for _, r := range reps {
		if prev, dup := seen[norms[r]]; dup {
			t.Errorf("representatives %d and %d share normalized title %q", prev, r, norms[r])
		}
		seen[norms[r]] = r
	}
}

// TestLSHMatchesExactOnFullCorpus runs the full-corpus dedup through
// the LSH candidate generator and checks it recovers the same unique
// counts and confirmed pairs as the exact scan.
func TestLSHMatchesExactOnFullCorpus(t *testing.T) {
	gt, err := corpus.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	truth := make(map[string]string)
	for _, e := range gt.DB.Errata() {
		truth[corpus.EntryRef(e)] = e.Key
	}
	oracle := func(a, b *core.Erratum) bool {
		return truth[corpus.EntryRef(a)] != "" &&
			truth[corpus.EntryRef(a)] == truth[corpus.EntryRef(b)]
	}

	db, _, err := specdoc.ParseAll(texts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Deduplicate(db, Options{Oracle: oracle, UseLSH: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueIntel != corpusprofile.TargetIntelUnique {
		t.Errorf("LSH unique Intel = %d, want %d", res.UniqueIntel, corpusprofile.TargetIntelUnique)
	}
	if res.ConfirmedPairs != 29 {
		t.Errorf("LSH confirmed pairs = %d, want 29", res.ConfirmedPairs)
	}
	// The LSH path reviews far fewer than the exact candidate volume
	// would at a low threshold, but every reviewed pair must be genuine
	// (score at or above the threshold).
	for _, p := range res.Reviewed {
		if p.Score < 0.6 {
			t.Errorf("reviewed pair below threshold: %v", p.Score)
		}
	}
}
