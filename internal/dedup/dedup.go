// Package dedup implements RemembERR's duplicate detection and keying
// mechanism (Section IV-A of the paper).
//
// AMD identifies errata across families with a shared numeric
// identifier: two families are affected by the same erratum when both
// documents carry an erratum with the same number.
//
// Intel documents offer no such mechanism. Duplicates are detected by
// title: entries with identical normalized titles are duplicates (the
// paper verified by manual inspection that near-identical titles imply
// identical content), and remaining candidates are ranked by decreasing
// title similarity and confirmed through manual review — modeled here as
// an oracle callback.
//
// Every cluster of identical errata receives a unique key, which is
// stored in Erratum.Key and shared by all its occurrences.
package dedup

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/textsim"
)

// Options configures deduplication.
type Options struct {
	// Metric is the title-similarity metric used to rank the manual
	// review candidates. Defaults to Jaccard.
	Metric textsim.Metric
	// Threshold is the minimum similarity for a pair to be surfaced for
	// review. The zero value selects the default 0.6; use SetThreshold
	// to request an explicit threshold of 0 ("review every candidate
	// pair").
	Threshold float64
	// thresholdSet distinguishes an explicit Threshold (possibly zero,
	// via SetThreshold) from the struct's zero value.
	thresholdSet bool
	// Oracle answers whether two entries describe the same erratum; it
	// models the paper's manual inspection of candidate pairs. A nil
	// oracle skips the manual stage (exact-title clustering only).
	Oracle func(a, b *core.Erratum) bool
	// MaxReviews caps the number of oracle consultations (0 = no cap),
	// mirroring the bounded human effort of the paper.
	MaxReviews int
	// UseLSH switches candidate generation from the exact O(n^2) scan
	// to a MinHash/LSH index (near-linear; slight recall loss). The
	// LSH path always ranks candidates by exact Jaccard similarity, so
	// only candidate *generation* is approximate.
	UseLSH bool
	// Parallelism bounds the worker pool for candidate *scoring* (0 =
	// GOMAXPROCS, 1 = sequential). Oracle consultation stays sequential
	// regardless: it mutates DSU state, so review order is load-bearing.
	// The result is identical at every worker count.
	Parallelism int
}

// SetThreshold sets Threshold explicitly. Unlike assigning the field
// directly, an explicit zero survives normalization and means "surface
// every candidate pair for review" instead of the default 0.6.
func (o *Options) SetThreshold(t float64) {
	o.Threshold = t
	o.thresholdSet = true
}

// CandidatePair is a reviewed candidate duplicate pair.
type CandidatePair struct {
	A, B      *core.Erratum
	Score     float64
	Confirmed bool
}

// Result summarizes a deduplication run.
type Result struct {
	// UniqueIntel and UniqueAMD count the clusters per vendor.
	UniqueIntel int
	UniqueAMD   int
	// ExactTitleClusters counts Intel clusters formed by exact
	// normalized-title matches that span more than one entry.
	ExactTitleClusters int
	// Reviewed lists the similarity-ranked candidate pairs shown to the
	// oracle, in review order.
	Reviewed []CandidatePair
	// ConfirmedPairs counts oracle-confirmed pairs (the paper found 29).
	ConfirmedPairs int
}

// Deduplicate assigns cluster keys to every erratum of the database and
// returns run statistics. Existing keys are overwritten.
func Deduplicate(db *core.Database, opts Options) (*Result, error) {
	if opts.Metric == "" {
		opts.Metric = textsim.MetricJaccard
	}
	if opts.Threshold == 0 && !opts.thresholdSet {
		opts.Threshold = 0.6
	}
	res := &Result{}

	if err := dedupAMD(db); err != nil {
		return nil, err
	}
	if err := dedupIntel(db, opts, res); err != nil {
		return nil, err
	}

	res.UniqueIntel = len(db.UniqueVendor(core.Intel))
	res.UniqueAMD = len(db.UniqueVendor(core.AMD))
	return res, nil
}

// dedupAMD keys AMD entries by their shared numeric identifier.
func dedupAMD(db *core.Database) error {
	for _, e := range db.VendorErrata(core.AMD) {
		if e.ID == "" {
			return fmt.Errorf("dedup: AMD erratum without ID in %s", e.DocKey)
		}
		e.Key = "A-" + e.ID
	}
	return nil
}

// dedupIntel clusters Intel entries by exact normalized title, then
// reviews similarity-ranked candidates with the oracle.
func dedupIntel(db *core.Database, opts Options, res *Result) error {
	entries := db.VendorErrata(core.Intel)
	if len(entries) == 0 {
		return nil
	}
	dsu := NewDSU(len(entries))

	// Stage 1: exact normalized-title clustering.
	byTitle := make(map[string][]int)
	for i, e := range entries {
		n := textsim.Normalize(e.Title)
		byTitle[n] = append(byTitle[n], i)
	}
	for _, idxs := range byTitle {
		for i := 1; i < len(idxs); i++ {
			dsu.Union(idxs[0], idxs[i])
		}
		if len(idxs) > 1 {
			res.ExactTitleClusters++
		}
	}

	// Stage 2: similarity-ranked review of remaining candidates. One
	// representative per cluster suffices, since merged entries share a
	// title.
	if opts.Oracle != nil {
		// Stage 1 merged every pair of entries with equal normalized
		// titles, so cluster representatives have pairwise-distinct
		// normalized titles and no identical-title pair can resurface
		// here.
		reps := clusterRepresentatives(dsu, len(entries))
		var cands []candidate
		if opts.UseLSH {
			cands = lshCandidates(entries, reps, opts.Threshold)
		} else {
			cands = exactCandidates(entries, reps, opts.Metric, opts.Threshold, opts.Parallelism)
		}
		for _, c := range cands {
			if opts.MaxReviews > 0 && len(res.Reviewed) >= opts.MaxReviews {
				break
			}
			if dsu.Find(c.i) == dsu.Find(c.j) {
				continue // already merged transitively
			}
			confirmed := opts.Oracle(entries[c.i], entries[c.j])
			res.Reviewed = append(res.Reviewed, CandidatePair{
				A: entries[c.i], B: entries[c.j], Score: c.score, Confirmed: confirmed,
			})
			if confirmed {
				dsu.Union(c.i, c.j)
				res.ConfirmedPairs++
			}
		}
	}

	// Key assignment: clusters ordered by their earliest occurrence
	// (document order, then sequence).
	assignIntelKeys(db, dsu, entries)
	return nil
}

// candidate is a scored candidate pair of entry indices.
type candidate struct {
	i, j  int
	score float64
}

func sortCandidates(cands []candidate) {
	sort.SliceStable(cands, func(x, y int) bool {
		if cands[x].score != cands[y].score {
			return cands[x].score > cands[y].score
		}
		if cands[x].i != cands[y].i {
			return cands[x].i < cands[y].i
		}
		return cands[x].j < cands[y].j
	})
}

// exactCandidates scans all representative pairs (O(n^2)), sharded by
// row across the worker pool. Per-row matches are merged in row order,
// so the pre-sort candidate sequence — and with sortCandidates' total
// (score, i, j) ordering, the final ranking — is identical to the
// sequential scan at every worker count.
func exactCandidates(entries []*core.Erratum, reps []int, metric textsim.Metric, threshold float64, workers int) []candidate {
	cands := parallel.Gather(len(reps), workers, func(a int) []candidate {
		var row []candidate
		i := reps[a]
		for b := a + 1; b < len(reps); b++ {
			j := reps[b]
			s := textsim.Similarity(metric, entries[i].Title, entries[j].Title)
			if s >= threshold {
				row = append(row, candidate{i: i, j: j, score: s})
			}
		}
		return row
	})
	sortCandidates(cands)
	return cands
}

// lshCandidates generates candidates through a MinHash/LSH index and
// scores colliding pairs exactly. Candidate generation is already
// near-linear, so it stays sequential.
func lshCandidates(entries []*core.Erratum, reps []int, threshold float64) []candidate {
	idx := textsim.NewLSHIndex(16, 4)
	for _, i := range reps {
		idx.Add(entries[i].Title)
	}
	var cands []candidate
	for _, p := range idx.CandidatePairs(threshold) {
		cands = append(cands, candidate{i: reps[p.I], j: reps[p.J], score: p.Score})
	}
	sortCandidates(cands)
	return cands
}

// clusterRepresentatives returns one index per DSU cluster, choosing the
// smallest index.
func clusterRepresentatives(dsu *DSU, n int) []int {
	seen := make(map[int]int)
	var reps []int
	for i := 0; i < n; i++ {
		root := dsu.Find(i)
		if _, ok := seen[root]; !ok {
			seen[root] = i
			reps = append(reps, i)
		}
	}
	return reps
}

func assignIntelKeys(db *core.Database, dsu *DSU, entries []*core.Erratum) {
	order := make(map[string]int)
	for _, d := range db.VendorDocuments(core.Intel) {
		order[d.Key] = d.Order
	}
	type clusterInfo struct {
		root     int
		minOrder int
		minSeq   int
	}
	infos := make(map[int]*clusterInfo)
	for i, e := range entries {
		root := dsu.Find(i)
		ci, ok := infos[root]
		if !ok {
			infos[root] = &clusterInfo{root: root, minOrder: order[e.DocKey], minSeq: e.Seq}
			continue
		}
		o := order[e.DocKey]
		if o < ci.minOrder || (o == ci.minOrder && e.Seq < ci.minSeq) {
			ci.minOrder, ci.minSeq = o, e.Seq
		}
	}
	sorted := make([]*clusterInfo, 0, len(infos))
	for _, ci := range infos {
		sorted = append(sorted, ci)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].minOrder != sorted[j].minOrder {
			return sorted[i].minOrder < sorted[j].minOrder
		}
		if sorted[i].minSeq != sorted[j].minSeq {
			return sorted[i].minSeq < sorted[j].minSeq
		}
		return sorted[i].root < sorted[j].root
	})
	keyOf := make(map[int]string, len(sorted))
	for i, ci := range sorted {
		keyOf[ci.root] = fmt.Sprintf("I-%04d", i+1)
	}
	for i, e := range entries {
		e.Key = keyOf[dsu.Find(i)]
	}
}

// DSU is a disjoint-set union (union-find) structure with path
// compression and union by size.
type DSU struct {
	parent []int
	size   []int
	sets   int
}

// NewDSU creates a DSU over n singleton elements.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int, n), size: make([]int, n), sets: n}
	for i := range d.parent {
		d.parent[i] = i
		d.size[i] = 1
	}
	return d
}

// Find returns the root of x's set.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of a and b; it reports whether a merge happened.
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	d.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// SizeOf returns the size of x's set.
func (d *DSU) SizeOf(x int) int { return d.size[d.Find(x)] }
