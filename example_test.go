package rememberr_test

import (
	"fmt"

	rememberr "repro"
)

// ExampleBuild shows the end-to-end database construction and the
// headline corpus statistics.
func ExampleBuild() {
	db, _, err := rememberr.Build(rememberr.DefaultBuildOptions())
	if err != nil {
		panic(err)
	}
	st := db.Stats()
	fmt.Printf("errata: %d (%d unique) across %d documents\n",
		st.Total, st.Unique, st.Documents)
	fmt.Printf("Intel: %d/%d, AMD: %d/%d\n",
		st.IntelTotal, st.IntelUnique, st.AMDTotal, st.AMDUnique)
	// Output:
	// errata: 2563 (1128 unique) across 28 documents
	// Intel: 2057/743, AMD: 506/385
}

// ExampleDatabase_Query demonstrates the fluent query API: how many
// unique bugs require a power-state transition together with at least
// one more trigger, and are reachable from a virtual machine guest?
func ExampleDatabase_Query() {
	db, _, err := rememberr.Build(rememberr.DefaultBuildOptions())
	if err != nil {
		panic(err)
	}
	n := db.Query().
		WithCategory("Trg_POW_pwc").
		MinTriggers(2).
		WithCategory("Ctx_PRV_vmg").
		Count()
	fmt.Println(n > 0)
	// Output:
	// true
}

// ExampleExperiments_ByID regenerates one figure and reports whether
// its shape checks against the paper hold.
func ExampleExperiments_ByID() {
	db, _, err := rememberr.Build(rememberr.DefaultBuildOptions())
	if err != nil {
		panic(err)
	}
	ex, err := rememberr.NewExperiments(db).ByID("figure-11")
	if err != nil {
		panic(err)
	}
	fmt.Println(ex.Title)
	fmt.Println("checks pass:", ex.Passed())
	// Output:
	// Number of errata by the number of triggers
	// checks pass: true
}
