#!/bin/sh
# Runs the store-format benchmarks — cold open v1 vs v2 and the serve
# point-lookup hot path — and emits BENCH_store.json. Two acceptance
# gates are enforced:
#
#   * cold open: FormatVersion 2 must open at least MIN_SPEEDUP (10x)
#     faster than the FormatVersion 1 JSON decode+index+fragments path
#   * allocations: the stitched /v1/errata/{key} path must stay at or
#     under MAX_ALLOCS (2) allocs/op
#
# Usage:
#
#   scripts/bench_store.sh              # 1 run per benchmark
#   COUNT=5 scripts/bench_store.sh     # benchstat-grade sample count
#   MIN_SPEEDUP=5 MAX_ALLOCS=4 ...     # relax the gates (debugging)
#
# The raw `go test` output is echoed to stderr so it can be piped into
# benchstat directly.
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-1}"
OUT="${OUT:-BENCH_store.json}"
MIN_SPEEDUP="${MIN_SPEEDUP:-10}"
MAX_ALLOCS="${MAX_ALLOCS:-2}"

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

{
	go test -run '^$' -bench '^BenchmarkColdOpenV1$|^BenchmarkColdOpenV2$|^BenchmarkEncodeV1$|^BenchmarkEncodeV2$' \
		-benchmem -count "$COUNT" ./internal/store/
	go test -run '^$' -bench '^BenchmarkServeErratumByKey$|^BenchmarkServeErrataPage$' \
		-benchmem -count "$COUNT" ./internal/serve/
} | tee /dev/stderr >"$RAW"

# parse() reduces the raw output: fastest ns/op per benchmark across
# -count runs, worst-case allocs/op, in first-seen order.
parse() {
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
		iters = $2
		ns = $3
		bytes = ""
		allocs = ""
		for (i = 4; i <= NF; i++) {
			if ($(i) == "B/op") bytes = $(i - 1)
			if ($(i) == "allocs/op") allocs = $(i - 1)
		}
		if (!(name in best_ns) || ns + 0 < best_ns[name] + 0) {
			best_ns[name] = ns
			best_iters[name] = iters
			best_bytes[name] = bytes
		}
		if (allocs != "" && (!(name in worst_allocs) || allocs + 0 > worst_allocs[name] + 0))
			worst_allocs[name] = allocs
		if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
	}
	'"$1"'
	' "$RAW"
}

parse '
	END {
		for (i = 0; i < n; i++) {
			name = order[i]
			if (i) printf ",\n"
			printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, best_iters[name], best_ns[name]
			if (best_bytes[name] != "") printf ", \"bytes_per_op\": %s", best_bytes[name]
			if (name in worst_allocs) printf ", \"allocs_per_op\": %s", worst_allocs[name]
			printf "}"
		}
		print ""
	}' |
	{
		printf '{\n  "suite": "store-format",\n  "count": %s,\n  "benchmarks": [\n' "$COUNT"
		cat
		printf '  ]\n}\n'
	} >"$OUT"

parse '
	END {
		v1 = best_ns["BenchmarkColdOpenV1"] + 0
		v2 = best_ns["BenchmarkColdOpenV2"] + 0
		stitched = worst_allocs["BenchmarkServeErratumByKey/stitched"] + 0
		if (v1 <= 0 || v2 <= 0) {
			print "FAIL: cold-open benchmarks missing from output"
			exit 1
		}
		speedup = v1 / v2
		printf "cold open: v1 %.1f ms, v2 %.1f ms -> %.1fx\n", v1 / 1e6, v2 / 1e6, speedup
		if (speedup < '"$MIN_SPEEDUP"') {
			printf "FAIL: cold-open speedup %.1fx below the '"$MIN_SPEEDUP"'x gate\n", speedup
			exit 1
		}
		printf "stitched point lookup: %d allocs/op\n", stitched
		if (stitched > '"$MAX_ALLOCS"') {
			printf "FAIL: stitched lookup %d allocs/op above the '"$MAX_ALLOCS"' gate\n", stitched
			exit 1
		}
	}' >&2

echo "wrote $OUT" >&2
