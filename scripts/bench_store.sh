#!/bin/sh
# Runs the store-format benchmarks — cold open v1 vs v2, the serve
# point-lookup hot path, and the mmap memory axis — and emits
# BENCH_store.json. Three acceptance gates are enforced:
#
#   * cold open: FormatVersion 2 must open at least MIN_SPEEDUP (10x)
#     faster than the FormatVersion 1 JSON decode+index+fragments path
#   * allocations: the stitched /v1/errata/{key} path must stay at or
#     under MAX_ALLOCS (2) allocs/op
#   * memory: the steady-state resident set of a point-lookup workload
#     over an mmap-opened corpus must stay at or under MAX_RSS_RATIO
#     (0.5) of the v2 file size (TestPointLookupRSS; Linux only, the
#     axis is skipped with a note elsewhere)
#
# Usage:
#
#   scripts/bench_store.sh              # 1 run per benchmark
#   COUNT=5 scripts/bench_store.sh     # benchstat-grade sample count
#   MIN_SPEEDUP=5 MAX_ALLOCS=4 ...     # relax the gates (debugging)
#   RSS_MB=128 scripts/bench_store.sh  # size the RSS corpus (default 64)
#
# The raw `go test` output is echoed to stderr so it can be piped into
# benchstat directly.
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-1}"
OUT="${OUT:-BENCH_store.json}"
MIN_SPEEDUP="${MIN_SPEEDUP:-10}"
MAX_ALLOCS="${MAX_ALLOCS:-2}"
MAX_RSS_RATIO="${MAX_RSS_RATIO:-0.5}"
RSS_MB="${RSS_MB:-64}"

RAW=$(mktemp)
RSSRAW=$(mktemp)
trap 'rm -f "$RAW" "$RSSRAW"' EXIT

{
	go test -run '^$' -bench '^BenchmarkColdOpenV1$|^BenchmarkColdOpenV2$|^BenchmarkEncodeV1$|^BenchmarkEncodeV2$' \
		-benchmem -count "$COUNT" ./internal/store/
	go test -run '^$' -bench '^BenchmarkServeErratumByKey$|^BenchmarkServeErrataPage$' \
		-benchmem -count "$COUNT" ./internal/serve/
} | tee /dev/stderr >"$RAW"

# Memory axis: the test skips itself off Linux, leaving no rss-result
# line; the gate then reports a note instead of failing.
STORE_RSS=1 STORE_RSS_MB="$RSS_MB" \
	go test -run '^TestPointLookupRSS$' -count=1 -v ./internal/store/ \
	| tee /dev/stderr >"$RSSRAW" || true
RSS_LINE=$(grep -o 'rss-result file_bytes=[0-9]* rss_bytes=[0-9]* ratio=[0-9.]*' "$RSSRAW" || true)
if [ -n "$RSS_LINE" ]; then
	FILE_BYTES=$(printf '%s' "$RSS_LINE" | sed 's/.*file_bytes=\([0-9]*\).*/\1/')
	RSS_BYTES=$(printf '%s' "$RSS_LINE" | sed 's/.*rss_bytes=\([0-9]*\).*/\1/')
	RSS_RATIO=$(printf '%s' "$RSS_LINE" | sed 's/.*ratio=\([0-9.]*\).*/\1/')
fi

# parse() reduces the raw output: fastest ns/op per benchmark across
# -count runs, worst-case allocs/op, in first-seen order.
parse() {
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
		iters = $2
		ns = $3
		bytes = ""
		allocs = ""
		for (i = 4; i <= NF; i++) {
			if ($(i) == "B/op") bytes = $(i - 1)
			if ($(i) == "allocs/op") allocs = $(i - 1)
		}
		if (!(name in best_ns) || ns + 0 < best_ns[name] + 0) {
			best_ns[name] = ns
			best_iters[name] = iters
			best_bytes[name] = bytes
		}
		if (allocs != "" && (!(name in worst_allocs) || allocs + 0 > worst_allocs[name] + 0))
			worst_allocs[name] = allocs
		if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
	}
	'"$1"'
	' "$RAW"
}

parse '
	END {
		for (i = 0; i < n; i++) {
			name = order[i]
			if (i) printf ",\n"
			printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, best_iters[name], best_ns[name]
			if (best_bytes[name] != "") printf ", \"bytes_per_op\": %s", best_bytes[name]
			if (name in worst_allocs) printf ", \"allocs_per_op\": %s", worst_allocs[name]
			printf "}"
		}
		print ""
	}' |
	{
		printf '{\n  "suite": "store-format",\n  "count": %s,\n' "$COUNT"
		if [ -n "$RSS_LINE" ]; then
			printf '  "memory": {"workload": "mmap-point-lookup", "file_bytes": %s, "rss_bytes": %s, "rss_ratio": %s, "gate_max_ratio": %s},\n' \
				"$FILE_BYTES" "$RSS_BYTES" "$RSS_RATIO" "$MAX_RSS_RATIO"
		fi
		printf '  "benchmarks": [\n'
		cat
		printf '  ]\n}\n'
	} >"$OUT"

parse '
	END {
		v1 = best_ns["BenchmarkColdOpenV1"] + 0
		v2 = best_ns["BenchmarkColdOpenV2"] + 0
		stitched = worst_allocs["BenchmarkServeErratumByKey/stitched"] + 0
		if (v1 <= 0 || v2 <= 0) {
			print "FAIL: cold-open benchmarks missing from output"
			exit 1
		}
		speedup = v1 / v2
		printf "cold open: v1 %.1f ms, v2 %.1f ms -> %.1fx\n", v1 / 1e6, v2 / 1e6, speedup
		if (speedup < '"$MIN_SPEEDUP"') {
			printf "FAIL: cold-open speedup %.1fx below the '"$MIN_SPEEDUP"'x gate\n", speedup
			exit 1
		}
		printf "stitched point lookup: %d allocs/op\n", stitched
		if (stitched > '"$MAX_ALLOCS"') {
			printf "FAIL: stitched lookup %d allocs/op above the '"$MAX_ALLOCS"' gate\n", stitched
			exit 1
		}
	}' >&2

if [ -n "$RSS_LINE" ]; then
	awk -v r="$RSS_RATIO" -v max="$MAX_RSS_RATIO" -v fb="$FILE_BYTES" -v rb="$RSS_BYTES" 'BEGIN {
		printf "mmap point lookup: %.1f MiB resident of %.1f MiB file -> %.1f%%\n", rb / 1048576, fb / 1048576, r * 100
		if (r + 0 > max + 0) {
			printf "FAIL: point-lookup RSS ratio %.2f above the %.2f gate\n", r, max
			exit 1
		}
	}' >&2
else
	echo "note: mmap RSS axis skipped (non-linux or mmap unsupported)" >&2
fi

echo "wrote $OUT" >&2
