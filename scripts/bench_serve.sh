#!/usr/bin/env bash
# bench_serve.sh — serving-tier latency benchmark across shard counts.
#
# Builds errserve and errload, then for each shard count (1, 4, 16)
# boots a server on a private port, drives the errload traffic mix at a
# fixed rate, and collects the server-side /v1/errata latency
# percentiles from the per-endpoint Prometheus histograms (scraped
# before and after each run and differenced). Emits BENCH_serve.json:
#
#   {"suite": "serve-shards", "rps": ..., "duration": "...",
#    "runs": [{"shards": 1, "p50_seconds": ..., "p99_seconds": ...,
#              "requests": ..., "errors": 0}, ...]}
#
# Knobs (env): RPS (default 300), DURATION (default 5s), SHARDS
# (default "1 4 16"), OUT (default BENCH_serve.json), RACE=1 builds
# both binaries with the race detector (slower; used by the CI smoke).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${BENCH_SERVE_PORT:-18373}"
ADDR="127.0.0.1:${PORT}"
RPS="${RPS:-300}"
DURATION="${DURATION:-5s}"
SHARDS="${SHARDS:-1 4 16}"
OUT="${OUT:-BENCH_serve.json}"
SLO_P50="${SLO_P50:-0}"
SLO_P99="${SLO_P99:-0}"

WORK="$(mktemp -d)"
SERVER_PID=""
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

BUILDFLAGS=()
if [ "${RACE:-0}" = "1" ]; then
    BUILDFLAGS+=(-race)
fi
go build "${BUILDFLAGS[@]}" -o "$WORK/errserve" ./cmd/errserve
go build "${BUILDFLAGS[@]}" -o "$WORK/errload" ./cmd/errload

run_one() {
    shards=$1
    "$WORK/errserve" -addr "$ADDR" -seed 1 -shards "$shards" >"$WORK/serve-$shards.log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "http://${ADDR}/healthz" >/dev/null 2>&1; then
            break
        fi
        sleep 0.2
    done
    curl -fsS "http://${ADDR}/healthz" >/dev/null

    "$WORK/errload" -url "http://${ADDR}" -rps "$RPS" -duration "$DURATION" \
        -slo-p50 "$SLO_P50" -slo-p99 "$SLO_P99" \
        -out "$WORK/load-$shards.json"

    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}

for n in $SHARDS; do
    echo "benchmarking shards=$n at ${RPS} rps for ${DURATION}..." >&2
    run_one "$n"
done

# Assemble BENCH_serve.json from the per-run errload reports. The
# reports are errload's own JSON; pull the fields with a line-oriented
# scrape (keys are unique per scope in that output) to stay
# dependency-free.
{
    printf '{\n  "suite": "serve-shards",\n  "rps": %s,\n  "duration": "%s",\n  "runs": [\n' "$RPS" "$DURATION"
    first=1
    for n in $SHARDS; do
        rep="$WORK/load-$n.json"
        p50=$(awk '/"errata"/,/}/' "$rep" | awk -F': ' '/"p50_seconds"/ {gsub(/,/, "", $2); print $2; exit}')
        p99=$(awk '/"errata"/,/}/' "$rep" | awk -F': ' '/"p99_seconds"/ {gsub(/,/, "", $2); print $2; exit}')
        reqs=$(awk -F': ' '/"requests"/ {gsub(/,/, "", $2); print $2; exit}' "$rep")
        errs=$(awk -F': ' '/"errors"/ {gsub(/,/, "", $2); print $2; exit}' "$rep")
        [ "$first" = 1 ] || printf ',\n'
        first=0
        printf '    {"shards": %s, "p50_seconds": %s, "p99_seconds": %s, "requests": %s, "errors": %s}' \
            "$n" "$p50" "$p99" "$reqs" "$errs"
    done
    printf '\n  ]\n}\n'
} >"$OUT"

echo "wrote $OUT" >&2
cat "$OUT" >&2
