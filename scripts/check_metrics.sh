#!/usr/bin/env bash
# check_metrics.sh — end-to-end observability smoke test.
#
# Boots errserve on a private port, scrapes /metrics and the v1 API,
# and validates the exposition output without requiring promtool: every
# non-comment line must look like
#
#   metric_name{label="value",...} <number>
#
# and the families the obs layer promises (HTTP latency histograms,
# cache counters, build-stage gauges) must be present. Exits non-zero
# on any violation.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${CHECK_METRICS_PORT:-18372}"
ADDR="127.0.0.1:${PORT}"
BIN="$(mktemp -d)/errserve"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/errserve
"$BIN" -addr "$ADDR" -seed 1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
    if curl -fsS "http://${ADDR}/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
curl -fsS "http://${ADDR}/healthz" >/dev/null

# Drive every endpoint class once so their series materialize.
curl -fsS "http://${ADDR}/v1/errata?limit=1" | grep -q '"total"'
curl -fsS "http://${ADDR}/v1/stats" >/dev/null
curl -fsS "http://${ADDR}/v1/metrics.json" | grep -q '"endpoints"'
# Legacy paths must answer 308 with a /v1 Location.
code_loc=$(curl -s -o /dev/null -w '%{http_code} %{redirect_url}' "http://${ADDR}/errata?limit=1")
case "$code_loc" in
    "308 "*"/v1/errata?limit=1") ;;
    *) echo "FAIL: /errata redirect gave: $code_loc" >&2; exit 1 ;;
esac

EXPO=$(curl -fsS "http://${ADDR}/metrics")

# Line-level format validation (promtool-free).
echo "$EXPO" | awk '
    /^#( HELP| TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*/ { next }
    /^#/ { print "FAIL: bad comment line: " $0; bad = 1; next }
    /^$/ { next }
    {
        if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$/) {
            print "FAIL: malformed sample line: " $0
            bad = 1
        }
    }
    END { exit bad }
'

# Family presence: the single shared registry must expose build, cache,
# classifier and HTTP metrics on one page.
for want in \
    'rememberr_http_requests_total{endpoint="errata"}' \
    '# TYPE rememberr_http_request_duration_seconds histogram' \
    'rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="+Inf"}' \
    'rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.001"}' \
    'rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.0001"}' \
    'rememberr_cache_hits_total' \
    'rememberr_cache_misses_total' \
    'rememberr_cache_entries' \
    'rememberr_classify_memo_hits_total' \
    'rememberr_build_stage_seconds{stage="dedup"}' \
    'rememberr_parallel_tasks_total'
do
    if ! grep -qF "$want" <<<"$EXPO"; then
        echo "FAIL: /metrics missing: $want" >&2
        exit 1
    fi
done

echo "OK: /metrics format and required families validated on $ADDR"
