#!/bin/sh
# Runs the stage-graph pipeline benchmarks (cold build, fully-warm
# replay, single-knob warm rebuild) and emits BENCH_pipeline.json with
# the best-of-N numbers plus the cold-vs-warm speedup ratios. Usage:
#
#   scripts/bench_pipeline.sh            # 3 runs per benchmark
#   COUNT=5 scripts/bench_pipeline.sh    # benchstat-grade sample count
#
# The raw `go test` output is echoed to stderr so it can be piped into
# benchstat directly.
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_pipeline.json}"

go test -run '^$' \
	-bench '^BenchmarkPipelineColdBuild$|^BenchmarkPipelineWarmFull$|^BenchmarkPipelineWarmKnob$' \
	-benchtime 1x -count "$COUNT" . |
	tee /dev/stderr |
	awk -v count="$COUNT" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
		ns = $3
		# Best-of-N: keep the fastest sample per benchmark (cold and
		# warm runs share the machine, so min is the least noisy).
		if (!(name in best) || ns + 0 < best[name] + 0) best[name] = ns
		if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
	}
	END {
		printf "{\n  \"suite\": \"pipeline-cache\",\n  \"count\": %s,\n  \"benchmarks\": [\n", count
		for (i = 0; i < n; i++) {
			name = order[i]
			printf "    {\"name\": \"%s\", \"best_ns_per_op\": %s}", name, best[name]
			printf (i < n - 1) ? ",\n" : "\n"
		}
		printf "  ]"
		cold = best["BenchmarkPipelineColdBuild"]
		warm = best["BenchmarkPipelineWarmFull"]
		knob = best["BenchmarkPipelineWarmKnob"]
		if (cold != "" && warm != "" && warm + 0 > 0)
			printf ",\n  \"warm_full_speedup\": %.2f", cold / warm
		if (cold != "" && knob != "" && knob + 0 > 0)
			printf ",\n  \"warm_knob_speedup\": %.2f", cold / knob
		print "\n}"
	}' >"$OUT"

echo "wrote $OUT" >&2
