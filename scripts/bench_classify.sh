#!/bin/sh
# Runs the classify matching-kernel benchmarks and emits
# BENCH_classify.json, one record per sub-benchmark, to seed the perf
# trajectory across PRs. Usage:
#
#   scripts/bench_classify.sh            # 1 run per variant
#   COUNT=5 scripts/bench_classify.sh    # benchstat-grade sample count
#
# The raw `go test` output is echoed to stderr so it can be piped into
# benchstat directly.
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-1}"
OUT="${OUT:-BENCH_classify.json}"

go test -run '^$' -bench '^BenchmarkClassifyEngine$|^BenchmarkClassifyEngineColdMemo$|^BenchmarkNewEngine$' \
	-benchmem -count "$COUNT" ./internal/classify/ |
	tee /dev/stderr |
	awk -v count="$COUNT" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
		iters = $2
		ns = $3
		bytes = ""
		allocs = ""
		for (i = 4; i <= NF; i++) {
			if ($(i) == "B/op") bytes = $(i - 1)
			if ($(i) == "allocs/op") allocs = $(i - 1)
		}
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
		if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
		if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
		printf "}"
	}
	END {
		print ""
	}' |
	{
		printf '{\n  "suite": "classify-kernel",\n  "count": %s,\n  "benchmarks": [\n' "$COUNT"
		cat
		printf '  ]\n}\n'
	} >"$OUT"

echo "wrote $OUT" >&2
