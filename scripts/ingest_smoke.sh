#!/usr/bin/env bash
# ingest_smoke.sh — end-to-end streaming-ingest smoke test.
#
# Boots a sharded errserve with a spool directory, then exercises both
# ingest paths against the real binary:
#
#   1. POST /v1/admin/ingest with a rendered document: the generation
#      must advance and the response must report the ingested document.
#   2. POSTing the identical bytes again must be an idempotent no-op
#      (skipped=1, same generation).
#   3. A half-written spool file (no "END OF DOCUMENT" terminator) must
#      be left in place, un-ingested.
#   4. A complete document renamed into the spool must be ingested and
#      moved to done/ within a few poll periods.
#
# Finally the ingest metric families must be present on /metrics.
# Exits non-zero on any violation.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${INGEST_SMOKE_PORT:-18373}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/errserve" ./cmd/errserve
go build -o "$WORK/errgen" ./cmd/errgen

# Documents from a different seed than the server's corpus, so every
# ingested file genuinely extends the served database.
"$WORK/errgen" -seed 2 -dir "$WORK/docs" >/dev/null
DOCS=("$WORK"/docs/*.txt)
[ "${#DOCS[@]}" -ge 2 ] || { echo "FAIL: errgen produced ${#DOCS[@]} documents" >&2; exit 1; }

SPOOL="$WORK/spool"
"$WORK/errserve" -addr "$ADDR" -seed 1 -shards 4 -spool "$SPOOL" -spool-interval 100ms &
SERVER_PID=$!

for _ in $(seq 1 100); do
    if curl -fsS "http://${ADDR}/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
gen() { curl -fsS "http://${ADDR}/healthz" | sed -n 's/.*"generation":\([0-9]*\).*/\1/p'; }
GEN0=$(gen)

# 1. Ingest over HTTP: generation must advance by one.
RESP=$(curl -fsS -X POST --data-binary @"${DOCS[0]}" "http://${ADDR}/v1/admin/ingest")
grep -q '"status":"ok"' <<<"$RESP" || { echo "FAIL: ingest response: $RESP" >&2; exit 1; }
grep -q '"documents":1' <<<"$RESP" || { echo "FAIL: ingest response: $RESP" >&2; exit 1; }
GEN1=$(gen)
[ "$GEN1" -eq $((GEN0 + 1)) ] || { echo "FAIL: generation $GEN0 -> $GEN1 after ingest" >&2; exit 1; }

# 2. Idempotent re-ingest: skipped, no new generation.
RESP=$(curl -fsS -X POST --data-binary @"${DOCS[0]}" "http://${ADDR}/v1/admin/ingest")
grep -q '"skipped":1' <<<"$RESP" || { echo "FAIL: re-ingest response: $RESP" >&2; exit 1; }
[ "$(gen)" -eq "$GEN1" ] || { echo "FAIL: re-ingest advanced the generation" >&2; exit 1; }

# 3. A half-written file must survive several polls un-ingested.
head -c 200 "${DOCS[1]}" > "$SPOOL/halfway.txt"
sleep 0.5
[ -f "$SPOOL/halfway.txt" ] || { echo "FAIL: half-written file was consumed" >&2; exit 1; }
[ "$(gen)" -eq "$GEN1" ] || { echo "FAIL: half-written file was ingested" >&2; exit 1; }
rm "$SPOOL/halfway.txt"

# 4. The temp+rename contract: a complete document lands in done/.
cp "${DOCS[1]}" "$SPOOL/arrival.txt.tmp"
mv "$SPOOL/arrival.txt.tmp" "$SPOOL/arrival.txt"
for _ in $(seq 1 50); do
    if [ -f "$SPOOL/done/arrival.txt" ]; then
        break
    fi
    sleep 0.2
done
[ -f "$SPOOL/done/arrival.txt" ] || { echo "FAIL: spooled document not processed" >&2; exit 1; }
GEN2=$(gen)
[ "$GEN2" -eq $((GEN1 + 1)) ] || { echo "FAIL: generation $GEN1 -> $GEN2 after spool ingest" >&2; exit 1; }

# The ingested documents must be queryable.
curl -fsS "http://${ADDR}/v1/errata?limit=1" | grep -q '"total"'

# Ingest metric families on the shared registry.
EXPO=$(curl -fsS "http://${ADDR}/metrics")
for want in \
    'rememberr_ingest_documents_total' \
    'rememberr_ingest_merge_duration_seconds' \
    'rememberr_ingest_swap_lag_seconds' \
    'rememberr_snapshot_delta_swaps_total' \
    'rememberr_shard_rebuilds_total' \
    'rememberr_ingest_spool_files_total{result="ingested"}'
do
    if ! grep -qF "$want" <<<"$EXPO"; then
        echo "FAIL: /metrics missing: $want" >&2
        exit 1
    fi
done

echo "OK: streaming ingest validated end to end on $ADDR (generations $GEN0 -> $GEN2)"
