package rememberr

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
)

// Directive is one ranked recommendation of a test-campaign plan: a set
// of triggers to exert together, the contexts to cover and the
// observation points to monitor. This operationalizes Section VI of the
// paper ("we need testing tools that exert power level transitions
// under MSR-determined configurations while operating custom features").
type Directive struct {
	// Rank orders directives by expected yield.
	Rank int
	// Triggers is the conjunctive trigger set to apply.
	Triggers []string
	// Contexts lists the contexts historically associated with bugs
	// matching the trigger set, most frequent first.
	Contexts []string
	// Observations lists the effect categories to monitor, most
	// frequent first.
	Observations []string
	// MSRs lists the registers to read as low-footprint observation
	// points.
	MSRs []string
	// Support is the number of unique historical errata matching the
	// trigger set.
	Support int
	// Rationale explains the directive.
	Rationale string
}

// CampaignOptions configures plan generation.
type CampaignOptions struct {
	// MaxDirectives caps the plan length (default 10).
	MaxDirectives int
	// MinSupport drops trigger sets backed by fewer unique errata
	// (default 3).
	MinSupport int
	// FocusVendor restricts the analysis to one vendor; nil means both.
	FocusVendor *Vendor
	// FocusClass restricts directives to trigger pairs involving the
	// given trigger class (e.g. "Trg_POW"); empty means all.
	FocusClass string
}

// DefaultCampaignOptions returns the standard plan configuration.
func DefaultCampaignOptions() CampaignOptions {
	return CampaignOptions{MaxDirectives: 10, MinSupport: 3}
}

// PlanCampaign derives a ranked test-campaign plan from the database:
// the strongest trigger interactions (Figure 12), each paired with the
// contexts in which matching bugs manifested and the effects and MSRs
// that witnessed them. Dynamic testing tools can use the directives as
// input-generation seeds and observation heuristics.
func (db *Database) PlanCampaign(opts CampaignOptions) []Directive {
	if opts.MaxDirectives == 0 {
		opts.MaxDirectives = 10
	}
	if opts.MinSupport == 0 {
		opts.MinSupport = 3
	}
	vendors := core.Vendors
	if opts.FocusVendor != nil {
		vendors = []Vendor{*opts.FocusVendor}
	}

	// Collect unique errata in scope.
	var errata []*Erratum
	for _, v := range vendors {
		errata = append(errata, db.core.UniqueVendor(v)...)
	}

	// Rank trigger pairs by support.
	corr := analysis.TriggerCorrelation(db.core)
	pairs := corr.TopPairs(0)

	var out []Directive
	for _, p := range pairs {
		if p.Count < opts.MinSupport {
			break
		}
		if opts.FocusClass != "" {
			if db.Scheme().ClassOf(p.A) != opts.FocusClass && db.Scheme().ClassOf(p.B) != opts.FocusClass {
				continue
			}
		}
		d := db.directiveFor(errata, []string{p.A, p.B})
		if d == nil {
			continue
		}
		d.Rank = len(out) + 1
		out = append(out, *d)
		if len(out) >= opts.MaxDirectives {
			break
		}
	}
	return out
}

// directiveFor builds one directive for a conjunctive trigger set.
func (db *Database) directiveFor(errata []*Erratum, triggers []string) *Directive {
	ctxCount := map[string]int{}
	effCount := map[string]int{}
	msrCount := map[string]int{}
	support := 0
	for _, e := range errata {
		if !hasAllTriggers(e, triggers) {
			continue
		}
		support++
		for _, c := range e.Ann.Categories(Context, db.Scheme()) {
			ctxCount[c]++
		}
		for _, c := range e.Ann.Categories(Effect, db.Scheme()) {
			effCount[c]++
		}
		for _, m := range e.Ann.MSRs {
			msrCount[m]++
		}
	}
	if support == 0 {
		return nil
	}
	d := &Directive{
		Triggers:     append([]string(nil), triggers...),
		Contexts:     topKeys(ctxCount, 3),
		Observations: topKeys(effCount, 3),
		MSRs:         topKeys(msrCount, 3),
		Support:      support,
	}
	d.Rationale = fmt.Sprintf(
		"%d historical errata required %s together; observing %s covers them with minimal footprint.",
		support, strings.Join(triggers, " + "), strings.Join(d.Observations, ", "))
	return d
}

func hasAllTriggers(e *Erratum, triggers []string) bool {
	for _, t := range triggers {
		found := false
		for _, it := range e.Ann.Triggers {
			if it.Category == t {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func topKeys(m map[string]int, n int) []string {
	type kv struct {
		k string
		v int
	}
	var list []kv
	for k, v := range m {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].v != list[j].v {
			return list[i].v > list[j].v
		}
		return list[i].k < list[j].k
	})
	var out []string
	for i, e := range list {
		if i >= n {
			break
		}
		out = append(out, e.k)
	}
	return out
}

// RenderPlan renders a campaign plan as readable text.
func RenderPlan(plan []Directive) string {
	var b strings.Builder
	for _, d := range plan {
		fmt.Fprintf(&b, "%2d. apply %s", d.Rank, strings.Join(d.Triggers, " AND "))
		if len(d.Contexts) > 0 {
			fmt.Fprintf(&b, "\n    contexts: %s", strings.Join(d.Contexts, ", "))
		}
		fmt.Fprintf(&b, "\n    observe:  %s", strings.Join(d.Observations, ", "))
		if len(d.MSRs) > 0 {
			fmt.Fprintf(&b, "\n    MSRs:     %s", strings.Join(d.MSRs, ", "))
		}
		fmt.Fprintf(&b, "\n    support:  %d errata\n", d.Support)
	}
	return b.String()
}
