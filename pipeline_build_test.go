package rememberr

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/store"
)

// encodeBuild runs Build with the given options and returns the
// deterministic store encoding of the result.
func encodeBuild(t *testing.T, options ...Option) ([]byte, *Database, *BuildReport) {
	t.Helper()
	db, rep, err := Build(options...)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := store.Encode(db.Core())
	if err != nil {
		t.Fatal(err)
	}
	return raw, db, rep
}

// stageCached maps stage name to the Cached flag of its trace span.
func stageCached(t *testing.T, rep *BuildReport) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	for _, sp := range rep.Trace.Children {
		out[sp.Name] = sp.Cached
	}
	if len(out) != 7 {
		t.Fatalf("trace has %d stages, want 7: %v", len(out), out)
	}
	return out
}

// TestBuildCacheByteIdentity is the byte-identity contract of the
// incremental pipeline: for the corpus seeds of the equivalence matrix,
// a warm (fully cached-prefix) rebuild produces a store.Encode byte
// stream identical to a cold uncached build, at parallelism 1 and N.
// Seed 1 additionally pins cold-uncached == cold-with-cache (the miss
// path must not perturb the build either).
func TestBuildCacheByteIdentity(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for i, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			// Alternate which parallelism populates and which replays,
			// so both orders are exercised across the matrix.
			parCold, parWarm := 1, 8
			if i%2 == 1 {
				parCold, parWarm = 8, 1
			}

			var ref []byte
			if seed == 1 {
				// Cold without any cache: the pre-pipeline monolith
				// equivalent.
				ref, _, _ = encodeBuild(t, WithSeed(seed), WithParallelism(parCold))
			}

			coldBytes, _, coldRep := encodeBuild(t,
				WithSeed(seed), WithParallelism(parCold), WithCache(dir))
			for name, cached := range stageCached(t, coldRep) {
				if cached {
					t.Errorf("cold build replayed stage %s from an empty cache", name)
				}
			}
			if ref != nil && !bytes.Equal(ref, coldBytes) {
				t.Fatal("cold build with cache differs from uncached build")
			}

			warmBytes, warmDB, warmRep := encodeBuild(t,
				WithSeed(seed), WithParallelism(parWarm), WithCache(dir))
			for name, cached := range stageCached(t, warmRep) {
				if !cached {
					t.Errorf("warm build re-ran stage %s", name)
				}
			}
			if !bytes.Equal(coldBytes, warmBytes) {
				t.Fatal("warm rebuild bytes differ from cold build")
			}

			// Second warm replay at the cold parallelism closes the
			// loop: both worker counts replay to identical bytes.
			warm2Bytes, _, _ := encodeBuild(t,
				WithSeed(seed), WithParallelism(parCold), WithCache(dir))
			if !bytes.Equal(coldBytes, warm2Bytes) {
				t.Fatal("warm rebuild at original parallelism differs")
			}

			if s := warmDB.Stats(); s.Total == 0 {
				t.Fatalf("warm database is empty: %+v", s)
			}
		})
	}
}

// TestWarmRebuildSuffixReruns changes one downstream knob at a time
// against a populated cache and asserts — via the trace and the
// rememberr_pipeline_stage_cache_{hits,misses}_total counters — that
// only the affected stage suffix re-runs, and that the result is
// byte-identical to an uncached build with the same knob.
func TestWarmRebuildSuffixReruns(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Build(WithCache(dir)); err != nil {
		t.Fatal(err)
	}

	// Interpolation knob: timeline and validate re-run, everything
	// upstream replays.
	reg := obs.NewRegistry()
	warmBytes, _, rep := encodeBuild(t,
		WithCache(dir), WithInterpolation(false), WithObservability(reg))
	wantCached := map[string]bool{
		"corpus": true, "render": true, "parse": true,
		"dedup": true, "annotate": true,
		"timeline": false, "validate": false,
	}
	for name, want := range wantCached {
		if got := stageCached(t, rep)[name]; got != want {
			t.Errorf("interpolation knob: stage %s cached=%v, want %v", name, got, want)
		}
		hits := reg.Counter("rememberr_pipeline_stage_cache_hits_total", "", obs.L("stage", name)).Value()
		misses := reg.Counter("rememberr_pipeline_stage_cache_misses_total", "", obs.L("stage", name)).Value()
		if want && (hits != 1 || misses != 0) {
			t.Errorf("stage %s: hits=%d misses=%d, want 1/0", name, hits, misses)
		}
		if !want && (hits != 0 || misses != 1) {
			t.Errorf("stage %s: hits=%d misses=%d, want 0/1", name, hits, misses)
		}
	}
	coldBytes, _, _ := encodeBuild(t, WithInterpolation(false))
	if !bytes.Equal(coldBytes, warmBytes) {
		t.Fatal("suffix-only warm rebuild differs from uncached build with same knob")
	}

	// Similarity-threshold knob (the classic example): corpus, render
	// and parse replay; dedup and everything downstream re-run.
	rep2reg := obs.NewRegistry()
	_, _, rep2 := encodeBuild(t,
		WithCache(dir), WithSimilarityThreshold(0.9), WithObservability(rep2reg))
	cached2 := stageCached(t, rep2)
	for _, name := range []string{"corpus", "render", "parse"} {
		if !cached2[name] {
			t.Errorf("threshold knob: prefix stage %s re-ran", name)
		}
	}
	for _, name := range []string{"dedup", "annotate", "timeline", "validate"} {
		if cached2[name] {
			t.Errorf("threshold knob: suffix stage %s replayed from cache", name)
		}
	}

	// The knob-changed artifacts are cached too: repeating either build
	// is now fully warm.
	_, _, rep3 := encodeBuild(t, WithCache(dir), WithInterpolation(false))
	for name, cached := range stageCached(t, rep3) {
		if !cached {
			t.Errorf("repeat of knob build re-ran stage %s", name)
		}
	}
}
