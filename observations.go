package rememberr

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/heredity"
	"repro/internal/timeline"
)

// Observation is one of the paper's thirteen numbered observations,
// re-evaluated on the built database.
type Observation struct {
	// ID is the paper's observation number ("O1".."O13").
	ID string
	// Statement is the paper's wording.
	Statement string
	// Holds reports whether the observation holds on this database.
	Holds bool
	// Evidence carries the measured numbers behind the verdict.
	Evidence string
}

// Observations re-evaluates O1-O13 on the database.
func (db *Database) Observations() []Observation {
	var out []Observation
	add := func(id, statement string, holds bool, format string, args ...interface{}) {
		out = append(out, Observation{
			ID: id, Statement: statement, Holds: holds,
			Evidence: fmt.Sprintf(format, args...),
		})
	}

	// O1: the number of reported errata does not significantly decrease
	// over time with new designs. Compare recent vs old Intel documents,
	// normalized per year of coverage.
	perYear := func(d *Document) float64 {
		last := d.LatestRevision()
		if last == nil {
			return float64(len(d.Errata))
		}
		years := last.Date.Sub(d.Released).Hours() / 24 / 365
		if years <= 0 {
			years = 1
		}
		return float64(len(d.Errata)) / years
	}
	var oldRate, newRate []float64
	for _, d := range db.core.VendorDocuments(Intel) {
		if d.GenIndex <= 4 {
			oldRate = append(oldRate, perYear(d))
		}
		if d.GenIndex >= 8 {
			newRate = append(newRate, perYear(d))
		}
	}
	add("O1", "The number of reported errata does not significantly decrease over time with new designs.",
		mean(newRate) > 0.5*mean(oldRate),
		"errata/year: old gens %.1f, recent gens %.1f", mean(oldRate), mean(newRate))

	// O2: cumulative curves are concave.
	series := timeline.CumulativeByDocument(db.core)
	concave, total := 0, 0
	for _, pts := range series {
		total++
		if timeline.Concavity(pts) >= 0.5 {
			concave++
		}
	}
	add("O2", "The increase in errata for a given design is usually concave.",
		concave*10 >= total*7, "%d/%d documents concave", concave, total)

	// O3: bugs are shared between generations, staying for many
	// generations.
	lins := heredity.LongestLineages(db.core, 1)
	maxSpan := 0
	if len(lins) > 0 {
		maxSpan = lins[0].GenSpan
	}
	m := heredity.SharedMatrix(db.core, Intel)
	sharedAny := 0
	for i := range m.Counts {
		for j := i + 1; j < len(m.Counts); j++ {
			sharedAny += m.Counts[i][j]
		}
	}
	add("O3", "Bugs are often shared between generations; shared bugs may stay for up to 11 generations.",
		maxSpan >= 10 && sharedAny > 500,
		"max generation span %d, %d shared (doc-pair) occurrences", maxSpan, sharedAny)

	// O4: most shared design flaws were known before the subsequent
	// generation's release.
	keys := heredity.SharedKeys(db.core, "intel-06", "intel-07", "intel-08", "intel-10")
	known := heredity.KnownBeforeNextRelease(db.core, keys, "intel-06", "intel-07")
	add("O4", "Most design flaws shared between generations were already known before releasing the subsequent generation.",
		known*2 > len(keys), "%d/%d known before the gen-7 release", known, len(keys))

	// O5: a substantial number of errata have no suggested workaround.
	w := analysis.Workarounds(db.core)
	noneI := frac(w[Intel][core.WorkaroundNone], len(db.UniqueVendor(Intel)))
	noneA := frac(w[AMD][core.WorkaroundNone], len(db.UniqueVendor(AMD)))
	add("O5", "A substantial number of errata do not have any suggested workaround.",
		noneI > 0.25 && noneA > 0.2,
		"no workaround: Intel %.1f%%, AMD %.1f%%", 100*noneI, 100*noneA)

	// O6: bugs are rarely fixed.
	fixes := analysis.Fixes(db.core)
	fixed, entries := 0, 0
	for _, f := range fixes {
		fixed += f.Fixed
		entries += f.Total()
	}
	add("O6", "Bugs are rarely fixed.", frac(fixed, entries) < 0.25,
		"fixed share %.1f%%", 100*frac(fixed, entries))

	// O7: most errata require MSR interaction/configuration combined
	// with throttling, power transitions or peripheral inputs.
	freq := analysis.FrequentCategories(db.core, Trigger)
	topOK := true
	for _, v := range core.Vendors {
		top3 := map[string]bool{}
		for i, cc := range freq[v] {
			if i < 3 {
				top3[cc.Category] = true
			}
		}
		if !top3["Trg_CFG_wrg"] || (!top3["Trg_POW_tht"] && !top3["Trg_POW_pwc"]) {
			topOK = false
		}
	}
	add("O7", "Most errata require specific MSR interaction or configuration combined with throttling, power state transitions, or peripheral inputs.",
		topOK, "Trg_CFG_wrg and power triggers lead for both vendors")

	// O8: some abstract triggers correlate strongly, most do not.
	corr := analysis.TriggerCorrelation(db.core)
	zero, pairs := 0, 0
	for i := range corr.Counts {
		for j := i + 1; j < len(corr.Counts); j++ {
			pairs++
			if corr.Counts[i][j] <= 1 {
				zero++
			}
		}
	}
	strongest := corr.TopPairs(1)
	strongCount := 0
	if len(strongest) > 0 {
		strongCount = strongest[0].Count
	}
	add("O8", "Some abstract triggers tend to correlate strongly, while most do not.",
		strongCount >= 10 && zero*10 >= pairs*6,
		"strongest pair %d errata; %d/%d pairs near zero", strongCount, zero, pairs)

	// O9: all trigger classes are necessary to trigger all known bugs.
	rows := analysis.ClassesOverGenerations(db.core)
	classTotals := map[string]int{}
	for _, r := range rows {
		for cl, n := range r.Classes {
			classTotals[cl] += n
		}
	}
	allUsed := true
	for _, cl := range db.Scheme().ClassIDs(Trigger) {
		if classTotals[cl] == 0 {
			allUsed = false
		}
	}
	add("O9", "It is necessary to apply all trigger classes to trigger all known bugs.",
		allUsed, "every trigger class appears in the Intel corpus")

	// O10: trigger-class representation is very similar across vendors.
	rep := analysis.ClassRepresentation(db.core, Trigger)
	maxDelta := 0.0
	for i, cl := range db.Scheme().ClassIDs(Trigger) {
		if cl == "Trg_EXT" || cl == "Trg_FEA" {
			continue
		}
		d := math.Abs(rep[Intel][i].Share - rep[AMD][i].Share)
		if d > maxDelta {
			maxDelta = d
		}
	}
	add("O10", "The representation of trigger classes over the errata corpora is very similar for Intel and AMD.",
		maxDelta < 0.08, "max non-EXT/FEA class delta %.1f pp", 100*maxDelta)

	// O11: most errors occur in the VM-guest context.
	ctxFreq := analysis.FrequentCategories(db.core, Context)
	vmgTop := len(ctxFreq[Intel]) > 0 && ctxFreq[Intel][0].Category == "Ctx_PRV_vmg" &&
		len(ctxFreq[AMD]) > 0 && ctxFreq[AMD][0].Category == "Ctx_PRV_vmg"
	add("O11", "Most errors occur in the context of hardware support for virtual machine guests.",
		vmgTop, "Ctx_PRV_vmg leads for both vendors")

	// O12: corrupted registers and hangs are the most common effects.
	effFreq := analysis.FrequentCategories(db.core, Effect)
	effOK := true
	for _, v := range core.Vendors {
		top3 := map[string]bool{}
		for i, cc := range effFreq[v] {
			if i < 3 {
				top3[cc.Category] = true
			}
		}
		if !top3["Eff_CRP_reg"] || !top3["Eff_HNG_hng"] {
			effOK = false
		}
	}
	add("O12", "Corrupted registers and hangs are the most common observable effects on Intel and AMD designs.",
		effOK, "Eff_CRP_reg and Eff_HNG_hng in the top-3 for both vendors")

	// O13: machine-check status registers most often indicate a bug.
	msrs := analysis.MSRFrequency(db.core)
	mcaTop := true
	for _, v := range core.Vendors {
		if len(msrs[v]) == 0 || (msrs[v][0].MSR != "MCx_STATUS" && msrs[v][0].MSR != "MCx_ADDR") {
			mcaTop = false
		}
	}
	add("O13", "Among MSRs, machine check status registers most often indicate a bug's occurrence.",
		mcaTop, "MCx_STATUS/MCx_ADDR lead for both vendors")

	return out
}

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}
