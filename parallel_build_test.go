package rememberr

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestBuildParallelDeterminism is the tentpole contract: for a fixed
// seed, the parallel build must produce a database and report
// byte-identical to the sequential one.
func TestBuildParallelDeterminism(t *testing.T) {
	seq := DefaultBuildOptions()
	seq.Parallelism = 1
	par := DefaultBuildOptions()
	par.Parallelism = 8

	dbSeq, repSeq, err := Build(seq)
	if err != nil {
		t.Fatal(err)
	}
	dbPar, repPar, err := Build(par)
	if err != nil {
		t.Fatal(err)
	}

	// Byte-identical database.
	encSeq, err := store.Encode(dbSeq.Core())
	if err != nil {
		t.Fatal(err)
	}
	encPar, err := store.Encode(dbPar.Core())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encSeq, encPar) {
		t.Fatal("parallel build is not byte-identical to the sequential build")
	}

	// Identical corpus statistics.
	if stSeq, stPar := dbSeq.Stats(), dbPar.Stats(); !reflect.DeepEqual(stSeq, stPar) {
		t.Errorf("stats differ: sequential %+v, parallel %+v", stSeq, stPar)
	}

	// Identical per-erratum cluster keys, in document order.
	eSeq, ePar := dbSeq.Errata(), dbPar.Errata()
	if len(eSeq) != len(ePar) {
		t.Fatalf("errata counts differ: %d vs %d", len(eSeq), len(ePar))
	}
	for i := range eSeq {
		if eSeq[i].FullID() != ePar[i].FullID() || eSeq[i].Key != ePar[i].Key {
			t.Fatalf("erratum %d differs: %s/%s vs %s/%s",
				i, eSeq[i].FullID(), eSeq[i].Key, ePar[i].FullID(), ePar[i].Key)
		}
	}

	// Identical build-report contents.
	if !reflect.DeepEqual(repSeq.Diagnostics, repPar.Diagnostics) {
		t.Error("parser diagnostics differ")
	}
	if repSeq.Dedup.ConfirmedPairs != repPar.Dedup.ConfirmedPairs ||
		len(repSeq.Dedup.Reviewed) != len(repPar.Dedup.Reviewed) ||
		repSeq.Dedup.UniqueIntel != repPar.Dedup.UniqueIntel ||
		repSeq.Dedup.UniqueAMD != repPar.Dedup.UniqueAMD ||
		repSeq.Dedup.ExactTitleClusters != repPar.Dedup.ExactTitleClusters {
		t.Errorf("dedup results differ: %+v vs %+v", repSeq.Dedup, repPar.Dedup)
	}
	for i := range repSeq.Dedup.Reviewed {
		a, b := repSeq.Dedup.Reviewed[i], repPar.Dedup.Reviewed[i]
		if a.Score != b.Score || a.Confirmed != b.Confirmed ||
			a.A.FullID() != b.A.FullID() || a.B.FullID() != b.B.FullID() {
			t.Fatalf("review %d differs", i)
		}
	}
	if repSeq.Annotation.HumanDecisions != repPar.Annotation.HumanDecisions ||
		!reflect.DeepEqual(repSeq.Annotation.Steps, repPar.Annotation.Steps) {
		t.Error("annotation protocol results differ")
	}
	if !reflect.DeepEqual(repSeq.Timeline, repPar.Timeline) {
		t.Errorf("timeline stats differ: %+v vs %+v", repSeq.Timeline, repPar.Timeline)
	}
}

// TestBuildExplicitZeroThreshold is the facade-level regression test
// for the zero-value option footgun: SetSimilarityThreshold(0) must
// surface every candidate pair for review instead of silently falling
// back to 0.6 — and must still recover the exact unique counts, since
// the oracle is ground truth.
func TestBuildExplicitZeroThreshold(t *testing.T) {
	def, repDef, err := Build(DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultBuildOptions()
	opts.SetSimilarityThreshold(0)
	all, repAll, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(repAll.Dedup.Reviewed) <= len(repDef.Dedup.Reviewed) {
		t.Fatalf("threshold 0 reviewed %d pairs, default reviewed %d: explicit zero was swallowed",
			len(repAll.Dedup.Reviewed), len(repDef.Dedup.Reviewed))
	}
	below := 0
	for _, p := range repAll.Dedup.Reviewed {
		if p.Score < 0.6 {
			below++
		}
	}
	if below == 0 {
		t.Error("threshold 0 surfaced no pair below 0.6; the default threshold still applies")
	}
	if s := all.Stats(); s.Unique != def.Stats().Unique {
		t.Errorf("threshold 0 changed unique count: %d vs %d", s.Unique, def.Stats().Unique)
	}
}

// TestBuildExplicitZeroStepsRejected: an explicit AnnotationSteps of 0
// must surface the validation error of the annotation stage instead of
// silently running 7 steps.
func TestBuildExplicitZeroStepsRejected(t *testing.T) {
	opts := DefaultBuildOptions()
	opts.SetAnnotationSteps(0)
	_, _, err := Build(opts)
	if err == nil {
		t.Fatal("explicit AnnotationSteps 0 built successfully; want a validation error")
	}
	if !strings.Contains(err.Error(), "Steps") {
		t.Errorf("unexpected error for explicit zero steps: %v", err)
	}
}

// TestBuildZeroValueDefaults pins the unchanged back-compat behavior:
// a plainly zero SimilarityThreshold / AnnotationSteps (no setter)
// still selects 0.6 and 7.
func TestBuildZeroValueDefaults(t *testing.T) {
	_, rep, err := Build(BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Annotation.Steps); got != 7 {
		t.Errorf("zero-value AnnotationSteps ran %d steps, want the default 7", got)
	}
	for _, p := range rep.Dedup.Reviewed {
		if p.Score < 0.6 {
			t.Fatalf("zero-value SimilarityThreshold surfaced a pair scored %v, below the default 0.6", p.Score)
		}
	}
}
