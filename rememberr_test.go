package rememberr

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	builtDB   *Database
	builtErr  error
)

// testDB builds the database once for all facade tests.
func testDB(t testing.TB) *Database {
	t.Helper()
	buildOnce.Do(func() {
		builtDB, _, builtErr = Build(DefaultBuildOptions())
	})
	if builtErr != nil {
		t.Fatal(builtErr)
	}
	return builtDB
}

func TestBuildStats(t *testing.T) {
	db := testDB(t)
	st := db.Stats()
	if st.Total != 2563 || st.IntelTotal != 2057 || st.AMDTotal != 506 {
		t.Errorf("totals = %+v", st)
	}
	if st.Unique != 1128 || st.IntelUnique != 743 || st.AMDUnique != 385 {
		t.Errorf("uniques = %+v", st)
	}
	if st.Documents != 28 {
		t.Errorf("documents = %d", st.Documents)
	}
	if st.Unclassified != 0 {
		t.Errorf("unclassified unique errata = %d, want 0", st.Unclassified)
	}
}

func TestBuildReport(t *testing.T) {
	db := testDB(t)
	rep := db.Report()
	if rep == nil {
		t.Fatal("no build report")
	}
	if rep.Dedup.ConfirmedPairs != 29 {
		t.Errorf("confirmed pairs = %d, want 29", rep.Dedup.ConfirmedPairs)
	}
	if len(rep.Annotation.Steps) != 7 {
		t.Errorf("annotation steps = %d", len(rep.Annotation.Steps))
	}
	if len(rep.Diagnostics) < 20 {
		t.Errorf("diagnostics = %d, expected the injected document errors to surface", len(rep.Diagnostics))
	}
	if rep.Timeline.Dated == 0 || rep.Timeline.Interpolated == 0 {
		t.Errorf("timeline stats = %+v", rep.Timeline)
	}
}

func TestAllExperimentsPass(t *testing.T) {
	db := testDB(t)
	for _, ex := range NewExperiments(db).All() {
		if ex.Text == "" && len(ex.Checks) > 0 && ex.Checks[0].Pass {
			t.Errorf("%s: empty rendering", ex.ID)
		}
		for _, c := range ex.Checks {
			if !c.Pass {
				t.Errorf("%s: check %q failed: %s", ex.ID, c.Name, c.Detail)
			}
		}
	}
}

func TestExperimentLookup(t *testing.T) {
	db := testDB(t)
	x := NewExperiments(db)
	ids := x.IDs()
	if len(ids) != 24 {
		t.Errorf("experiments = %d, want 24", len(ids))
	}
	ex, err := x.ByID("figure-10")
	if err != nil || ex.ID != "figure-10" {
		t.Errorf("ByID: %v", err)
	}
	if _, err := x.ByID("figure-99"); err == nil {
		t.Error("ByID accepted unknown id")
	}
}

func TestObservationsHold(t *testing.T) {
	db := testDB(t)
	obs := db.Observations()
	if len(obs) != 13 {
		t.Fatalf("observations = %d, want 13", len(obs))
	}
	for _, o := range obs {
		if !o.Holds {
			t.Errorf("%s does not hold: %s (%s)", o.ID, o.Statement, o.Evidence)
		}
	}
}

func TestQuery(t *testing.T) {
	db := testDB(t)
	all := db.Query().Count()
	if all != 1128 {
		t.Errorf("unfiltered count = %d", all)
	}
	intel := db.Query().Vendor(Intel).Count()
	if intel != 743 {
		t.Errorf("intel count = %d", intel)
	}
	hangs := db.Query().WithCategory("Eff_HNG_hng").Count()
	if hangs == 0 || hangs >= all {
		t.Errorf("hang count = %d", hangs)
	}
	multi := db.Query().MinTriggers(2).Count()
	single := db.Query().MinTriggers(1).Count()
	if multi == 0 || multi >= single {
		t.Errorf("multi=%d single=%d", multi, single)
	}
	powerHangs := db.Query().WithClass("Trg_POW").WithCategory("Eff_HNG_hng").Count()
	if powerHangs > hangs {
		t.Error("conjunctive filter grew the result")
	}
	none := db.Query().Workaround(WorkaroundCategory(0)).Count()
	if none == 0 {
		t.Error("no None-workaround errata")
	}
	if db.Query().InDocument("intel-12").Vendor(AMD).Count() != 0 {
		t.Error("contradictory filters matched")
	}
	from := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	window := db.Query().DisclosedBetween(from, to).Count()
	if window == 0 || window >= all {
		t.Errorf("window count = %d", window)
	}
	mcx := db.Query().ObservableIn("MCx_STATUS").Count()
	if mcx == 0 {
		t.Error("no MCx_STATUS errata")
	}
	if len(db.Query().Vendor(AMD).Keys()) != 385 {
		t.Error("keys count wrong")
	}
	if got := len(db.Query().Vendor(Intel).All()); got != 2057 {
		t.Errorf("All() = %d", got)
	}
	if db.Query().TitleContains("zzz-no-such-title").Count() != 0 {
		t.Error("bogus title matched")
	}
	if db.Query().Complex().Count() == 0 {
		t.Error("no complex-condition errata")
	}
	// AnyCategory is disjunctive: at least as many matches as each part.
	hangsOrCrashes := db.Query().AnyCategory("Eff_HNG_hng", "Eff_HNG_crh").Count()
	crashes := db.Query().WithCategory("Eff_HNG_crh").Count()
	if hangsOrCrashes < hangs || hangsOrCrashes < crashes || hangsOrCrashes > hangs+crashes {
		t.Errorf("AnyCategory = %d (hangs %d, crashes %d)", hangsOrCrashes, hangs, crashes)
	}
	// The paper: only five AMD and one Intel erratum are simulation-only.
	if got := db.Query().SimulationOnly().Vendor(AMD).Count(); got != 5 {
		t.Errorf("AMD simulation-only = %d, want 5", got)
	}
	if got := db.Query().SimulationOnly().Vendor(Intel).Count(); got != 1 {
		t.Errorf("Intel simulation-only = %d, want 1", got)
	}
}

func TestPlanCampaign(t *testing.T) {
	db := testDB(t)
	plan := db.PlanCampaign(DefaultCampaignOptions())
	if len(plan) == 0 {
		t.Fatal("empty campaign plan")
	}
	if len(plan) > 10 {
		t.Errorf("plan too long: %d", len(plan))
	}
	for i, d := range plan {
		if d.Rank != i+1 {
			t.Errorf("rank %d at position %d", d.Rank, i)
		}
		if len(d.Triggers) != 2 || d.Support < 3 || len(d.Observations) == 0 {
			t.Errorf("directive %d malformed: %+v", i, d)
		}
		if i > 0 && plan[i].Support > plan[i-1].Support {
			t.Error("plan not ordered by support")
		}
	}
	text := RenderPlan(plan)
	if !strings.Contains(text, "apply") || !strings.Contains(text, "observe") {
		t.Errorf("rendered plan:\n%s", text)
	}
	// Focused plan: power-related directives only.
	focused := db.PlanCampaign(CampaignOptions{MaxDirectives: 5, MinSupport: 2, FocusClass: "Trg_POW"})
	for _, d := range focused {
		hasPow := false
		for _, tr := range d.Triggers {
			if strings.HasPrefix(tr, "Trg_POW") {
				hasPow = true
			}
		}
		if !hasPow {
			t.Errorf("focused directive without POW trigger: %v", d.Triggers)
		}
	}
	// Vendor-focused plan.
	v := AMD
	amdPlan := db.PlanCampaign(CampaignOptions{MaxDirectives: 5, MinSupport: 1, FocusVendor: &v})
	if len(amdPlan) == 0 {
		t.Error("empty AMD plan")
	}
}

func TestBuildDeterminism(t *testing.T) {
	db1 := testDB(t)
	db2, _, err := Build(DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := db1.Errata(), db2.Errata()
	if len(e1) != len(e2) {
		t.Fatal("entry counts differ")
	}
	for i := range e1 {
		if e1[i].FullID() != e2[i].FullID() || e1[i].Key != e2[i].Key ||
			!e1[i].Disclosed.Equal(e2[i].Disclosed) {
			t.Fatalf("entry %d differs across builds", i)
		}
	}
}

func TestBuildOptionVariants(t *testing.T) {
	opts := DefaultBuildOptions()
	opts.Seed = 42
	opts.SimilarityMetric = Metric("dice")
	opts.AnnotationSteps = 5
	opts.Interpolate = false
	db, rep, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if db.Stats().Total != 2563 {
		t.Errorf("total = %d", db.Stats().Total)
	}
	if len(rep.Annotation.Steps) != 5 {
		t.Errorf("steps = %d, want 5", len(rep.Annotation.Steps))
	}
	if rep.Timeline.Interpolated != 0 {
		t.Errorf("interpolation disabled but %d interpolated", rep.Timeline.Interpolated)
	}
}

func TestBaseSchemeAccessor(t *testing.T) {
	if BaseScheme().NumCategories(-1) != 60 {
		t.Error("BaseScheme wrong")
	}
}
