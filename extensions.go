package rememberr

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/heredity"
	"repro/internal/store"
)

// Severity re-exports the conservative severity grading of effects.
type Severity = analysis.Severity

// Severity levels, from least to most critical.
const (
	SeverityUnknown    = analysis.SeverityUnknown
	SeverityDegrading  = analysis.SeverityDegrading
	SeverityCorrupting = analysis.SeverityCorrupting
	SeverityFatal      = analysis.SeverityFatal
)

// SeverityBreakdown re-exports the per-vendor severity histogram.
type SeverityBreakdown = analysis.SeverityBreakdown

// Severities grades every unique erratum conservatively by its worst
// effect (hangs are fatal; corrupted state and fault-delivery errors
// silently wrong; external side effects degrading) and reports the
// per-vendor breakdown, including the fatal bugs reachable from a VM
// guest.
func (db *Database) Severities() []SeverityBreakdown {
	return analysis.Severities(db.core)
}

// Grade returns the conservative severity of one erratum.
func (db *Database) Grade(e *Erratum) Severity {
	return analysis.Grade(e, db.Scheme())
}

// MostCritical returns the n most critical unique errata of a vendor.
func (db *Database) MostCritical(v Vendor, n int) []*Erratum {
	return analysis.MostCritical(db.core, v, n)
}

// Rediscovery re-exports the per-document rediscovery statistics.
type Rediscovery = heredity.Rediscovery

// Rediscoveries answers the paper's rediscovery question per document:
// how many of a design's bugs were shared with earlier designs, and how
// many of those were already disclosed before this design shipped.
func (db *Database) Rediscoveries(v Vendor) []Rediscovery {
	return heredity.RediscoveryStats(db.core, v)
}

// RenderRediscoveries renders the rediscovery table.
func RenderRediscoveries(stats []Rediscovery) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %10s %16s %8s\n", "document", "bugs", "inherited", "known@release", "fraction")
	for _, r := range stats {
		fmt.Fprintf(&b, "%-12s %6d %10d %16d %7.0f%%\n",
			r.DocKey, r.Keys, r.Inherited, r.KnownAtRelease, 100*r.KnownFraction())
	}
	return b.String()
}

// Save persists the database as JSON.
func (db *Database) Save(path string) error {
	return store.Save(db.core, path)
}

// Load reads a database previously saved with Save. Loaded databases
// have no build report; experiments that need one (Figures 8 and 9,
// the decision-reduction study) report that in their checks.
func Load(path string) (*Database, error) {
	r, err := store.Open(path, store.WithMmap(false))
	if err != nil {
		return nil, err
	}
	c, err := r.Database()
	if err != nil {
		return nil, err
	}
	return &Database{core: c}, nil
}

// ExportCSVs returns the CSV payloads of every experiment that produces
// one, keyed by experiment ID.
func (x *Experiments) ExportCSVs() map[string]string {
	out := make(map[string]string)
	for _, ex := range x.All() {
		if ex.CSV != "" {
			out[ex.ID] = ex.CSV
		}
	}
	return out
}
