package rememberr

import (
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/annotate"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dedup"
	"repro/internal/pipeline"
	"repro/internal/specdoc"
	"repro/internal/store"
	"repro/internal/timeline"
)

// This file declares the seven build stages — corpus, render, parse,
// dedup, annotate, timeline, validate — over the internal/pipeline
// runner. The declaration preserves the monolithic Build's exact
// behavior (stage order, span names and item counts, error messages,
// and byte-identical output at every worker count and cache state); the
// runner adds content-addressed memoization when Build runs with
// WithCache.
//
// Artifact encoding reuses internal/store's deterministic FormatVersion
// 2 database encoding (no postings/fragments — mid-pipeline databases
// are still being mutated), embedded as a base64 []byte inside a small
// per-stage container. Decoding sniffs the format, so the code would
// still read a v1-JSON payload; in practice the stage Version bumps
// that came with the v2 switch retired all v1 cache entries.
// Database payloads stay as undecoded bytes (pipeDB) until a
// live downstream stage — or the final report assembly — actually needs
// the value, so a fully warm rebuild decodes exactly two databases (the
// ground truth and the final output) and nothing else.
//
// Mutation contract: dedup, annotate and timeline take over their input
// database and mutate it in place, exactly like the monolith did. The
// runner encodes every artifact before the next stage runs, so cached
// bytes always reflect the stage's own output, never a downstream
// mutation.

// pipeDB is a database artifact payload that can hold either the live
// in-memory database, its deterministic store encoding, or both. Both
// directions memoize, so a value shared between stages (timeline and
// validate share one) is encoded and decoded at most once.
type pipeDB struct {
	raw []byte
	db  *core.Database
}

func (p *pipeDB) database() (*core.Database, error) {
	if p.db == nil {
		r, err := store.OpenBytes(p.raw)
		if err != nil {
			return nil, fmt.Errorf("rememberr: decode cached database artifact: %w", err)
		}
		db, err := r.Database()
		if err != nil {
			return nil, fmt.Errorf("rememberr: decode cached database artifact: %w", err)
		}
		p.db = db
	}
	return p.db, nil
}

func (p *pipeDB) encoded() ([]byte, error) {
	if p.raw == nil {
		raw, err := store.EncodeV2(p.db, store.V2Options{})
		if err != nil {
			return nil, fmt.Errorf("rememberr: encode database artifact: %w", err)
		}
		p.raw = raw
	}
	return p.raw, nil
}

// gtArtifact is the cached form of the generator's ground truth.
type gtArtifact struct {
	DB             []byte                     `json:"db"`
	Lineages       map[string]*corpus.Lineage `json:"lineages"`
	ConfirmedPairs [][2]string                `json:"confirmed_pairs"`
	Inventory      corpus.ErrorInventory      `json:"inventory"`
	Seed           int64                      `json:"seed"`
}

func encodeGroundTruth(gt *corpus.GroundTruth) ([]byte, error) {
	raw, err := store.EncodeV2(gt.DB, store.V2Options{})
	if err != nil {
		return nil, err
	}
	return json.Marshal(gtArtifact{
		DB:             raw,
		Lineages:       gt.Lineages,
		ConfirmedPairs: gt.ConfirmedPairs,
		Inventory:      gt.Inventory,
		Seed:           gt.Seed,
	})
}

func decodeGroundTruth(b []byte) (any, error) {
	var a gtArtifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, err
	}
	r, err := store.OpenBytes(a.DB)
	if err != nil {
		return nil, err
	}
	db, err := r.Database()
	if err != nil {
		return nil, err
	}
	return &corpus.GroundTruth{
		DB:             db,
		Lineages:       a.Lineages,
		ConfirmedPairs: a.ConfirmedPairs,
		Inventory:      a.Inventory,
		Seed:           a.Seed,
	}, nil
}

// parseValue carries the parsed database plus the parser diagnostics.
type parseValue struct {
	db    *pipeDB
	diags []specdoc.Diagnostic
}

type parseArtifact struct {
	DB          []byte               `json:"db"`
	Diagnostics []specdoc.Diagnostic `json:"diagnostics"`
}

// reviewedRef is a CandidatePair with the entry pointers replaced by
// stable entry references ("docKey#seq"), so the dedup summary can be
// cached independently of any particular in-memory database and relinked
// against the final one at report-assembly time.
type reviewedRef struct {
	A         string  `json:"a"`
	B         string  `json:"b"`
	Score     float64 `json:"score"`
	Confirmed bool    `json:"confirmed,omitempty"`
}

type dedupSummary struct {
	UniqueIntel        int           `json:"unique_intel"`
	UniqueAMD          int           `json:"unique_amd"`
	ExactTitleClusters int           `json:"exact_title_clusters"`
	Reviewed           []reviewedRef `json:"reviewed"`
	ConfirmedPairs     int           `json:"confirmed_pairs"`
}

func summarizeDedup(r *dedup.Result) dedupSummary {
	s := dedupSummary{
		UniqueIntel:        r.UniqueIntel,
		UniqueAMD:          r.UniqueAMD,
		ExactTitleClusters: r.ExactTitleClusters,
		ConfirmedPairs:     r.ConfirmedPairs,
	}
	if len(r.Reviewed) > 0 {
		s.Reviewed = make([]reviewedRef, len(r.Reviewed))
		for i, p := range r.Reviewed {
			s.Reviewed[i] = reviewedRef{
				A: corpus.EntryRef(p.A), B: corpus.EntryRef(p.B),
				Score: p.Score, Confirmed: p.Confirmed,
			}
		}
	}
	return s
}

// reviveDedup rebuilds a *dedup.Result whose candidate pairs point into
// db. On the cold path the refs came from the same database, so the
// pairs resolve to the very same entries the dedup stage reviewed.
func reviveDedup(s dedupSummary, db *core.Database) (*dedup.Result, error) {
	r := &dedup.Result{
		UniqueIntel:        s.UniqueIntel,
		UniqueAMD:          s.UniqueAMD,
		ExactTitleClusters: s.ExactTitleClusters,
		ConfirmedPairs:     s.ConfirmedPairs,
	}
	if len(s.Reviewed) == 0 {
		return r, nil
	}
	byRef := make(map[string]*core.Erratum)
	for _, e := range db.Errata() {
		byRef[corpus.EntryRef(e)] = e
	}
	r.Reviewed = make([]dedup.CandidatePair, len(s.Reviewed))
	for i, p := range s.Reviewed {
		a, b := byRef[p.A], byRef[p.B]
		if a == nil || b == nil {
			return nil, fmt.Errorf("rememberr: dedup summary references unknown entries %q, %q", p.A, p.B)
		}
		r.Reviewed[i] = dedup.CandidatePair{A: a, B: b, Score: p.Score, Confirmed: p.Confirmed}
	}
	return r, nil
}

// dedupValue carries the deduplicated database plus the ref-based
// summary of the run.
type dedupValue struct {
	db  *pipeDB
	sum dedupSummary
}

type dedupArtifact struct {
	DB     []byte       `json:"db"`
	Result dedupSummary `json:"result"`
}

// annotateValue carries the annotated database plus the four-eyes
// protocol results.
type annotateValue struct {
	db  *pipeDB
	res *annotate.Result
}

type annotateArtifact struct {
	DB     []byte           `json:"db"`
	Result *annotate.Result `json:"result"`
}

// timelineValue carries the final database plus the disclosure-date
// inference stats. The validate stage passes the same value through, so
// its artifact shares the timeline stage's encoded bytes.
type timelineValue struct {
	db    *pipeDB
	stats timeline.Stats
}

type timelineArtifact struct {
	DB    []byte         `json:"db"`
	Stats timeline.Stats `json:"stats"`
}

func encodeTimelineValue(v any) ([]byte, error) {
	tv := v.(*timelineValue)
	raw, err := tv.db.encoded()
	if err != nil {
		return nil, err
	}
	return json.Marshal(timelineArtifact{DB: raw, Stats: tv.stats})
}

func decodeTimelineValue(b []byte) (any, error) {
	var a timelineArtifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, err
	}
	return &timelineValue{db: &pipeDB{raw: a.DB}, stats: a.Stats}, nil
}

// buildStages declares the build graph for one normalized
// configuration. Parallelism is deliberately absent from every Config
// fingerprint: the build contract guarantees byte-identical output at
// every worker count, so artifacts cached at one parallelism are valid
// at all of them. Bump a stage's Version whenever its implementation
// changes observable output.
func buildStages(opts BuildOptions) []*pipeline.Stage {
	reg := opts.Observability
	return []*pipeline.Stage{
		{
			ID: "corpus", Version: "v2",
			Config: pipeline.Fingerprint("seed=" + strconv.FormatInt(opts.Seed, 10)),
			Run: func(c *pipeline.Ctx) (any, error) {
				gt, err := corpus.Generate(opts.Seed)
				if err != nil {
					return nil, fmt.Errorf("rememberr: corpus generation: %w", err)
				}
				c.SetItems(len(gt.DB.Errata()))
				return gt, nil
			},
			Encode: func(v any) ([]byte, error) { return encodeGroundTruth(v.(*corpus.GroundTruth)) },
			Decode: decodeGroundTruth,
		},
		{
			ID: "render", Version: "v1", Inputs: []string{"corpus"},
			Run: func(c *pipeline.Ctx) (any, error) {
				v, err := c.Input(0)
				if err != nil {
					return nil, err
				}
				gt := v.(*corpus.GroundTruth)
				dup := make(map[string]string)
				for _, fe := range gt.Inventory.FieldErrors {
					if fe.Kind == "duplicate" {
						field := fe.Field
						if field == "Description" {
							field = "Problem"
						}
						dup[fe.Ref] = field
					}
				}
				texts := specdoc.WriteAllParallel(gt.DB, specdoc.WriteOptions{DuplicateFields: dup}, opts.Parallelism)
				c.SetItems(len(texts))
				return texts, nil
			},
			Encode: func(v any) ([]byte, error) { return json.Marshal(v.(map[string]string)) },
			Decode: func(b []byte) (any, error) {
				var texts map[string]string
				err := json.Unmarshal(b, &texts)
				return texts, err
			},
		},
		{
			ID: "parse", Version: "v2", Inputs: []string{"render"},
			Run: func(c *pipeline.Ctx) (any, error) {
				v, err := c.Input(0)
				if err != nil {
					return nil, err
				}
				texts := v.(map[string]string)
				db, diags, err := specdoc.ParseAllParallel(texts, opts.Parallelism)
				if err != nil {
					return nil, fmt.Errorf("rememberr: parse: %w", err)
				}
				c.SetItems(len(texts))
				return &parseValue{db: &pipeDB{db: db}, diags: diags}, nil
			},
			Encode: func(v any) ([]byte, error) {
				pv := v.(*parseValue)
				raw, err := pv.db.encoded()
				if err != nil {
					return nil, err
				}
				return json.Marshal(parseArtifact{DB: raw, Diagnostics: pv.diags})
			},
			Decode: func(b []byte) (any, error) {
				var a parseArtifact
				if err := json.Unmarshal(b, &a); err != nil {
					return nil, err
				}
				return &parseValue{db: &pipeDB{raw: a.DB}, diags: a.Diagnostics}, nil
			},
		},
		{
			ID: "dedup", Version: "v2", Inputs: []string{"parse", "corpus"},
			Config: pipeline.Fingerprint(
				"metric="+string(opts.SimilarityMetric),
				"threshold="+strconv.FormatFloat(opts.SimilarityThreshold, 'g', -1, 64),
				"lsh="+strconv.FormatBool(opts.UseLSH),
			),
			Run: func(c *pipeline.Ctx) (any, error) {
				v0, err := c.Input(0)
				if err != nil {
					return nil, err
				}
				v1, err := c.Input(1)
				if err != nil {
					return nil, err
				}
				db, err := v0.(*parseValue).db.database()
				if err != nil {
					return nil, err
				}
				gt := v1.(*corpus.GroundTruth)
				truthKey := make(map[string]string)
				for _, e := range gt.DB.Errata() {
					truthKey[corpus.EntryRef(e)] = e.Key
				}
				oracle := func(a, b *core.Erratum) bool {
					ka, kb := truthKey[corpus.EntryRef(a)], truthKey[corpus.EntryRef(b)]
					return ka != "" && ka == kb
				}
				dopts := dedup.Options{
					Metric:      opts.SimilarityMetric,
					Oracle:      oracle,
					UseLSH:      opts.UseLSH,
					Parallelism: opts.Parallelism,
				}
				// The threshold is already resolved, so pass it
				// explicitly: an explicit zero must review every
				// candidate pair rather than trip dedup's own default.
				dopts.SetThreshold(opts.SimilarityThreshold)
				dres, err := dedup.Deduplicate(db, dopts)
				if err != nil {
					return nil, fmt.Errorf("rememberr: dedup: %w", err)
				}
				c.SetItems(len(dres.Reviewed))
				return &dedupValue{db: &pipeDB{db: db}, sum: summarizeDedup(dres)}, nil
			},
			Encode: func(v any) ([]byte, error) {
				dv := v.(*dedupValue)
				raw, err := dv.db.encoded()
				if err != nil {
					return nil, err
				}
				return json.Marshal(dedupArtifact{DB: raw, Result: dv.sum})
			},
			Decode: func(b []byte) (any, error) {
				var a dedupArtifact
				if err := json.Unmarshal(b, &a); err != nil {
					return nil, err
				}
				return &dedupValue{db: &pipeDB{raw: a.DB}, sum: a.Result}, nil
			},
		},
		{
			ID: "annotate", Version: "v2", Inputs: []string{"dedup", "corpus"},
			Config: pipeline.Fingerprint(
				"seed="+strconv.FormatInt(opts.Seed, 10),
				"steps="+strconv.Itoa(opts.AnnotationSteps),
			),
			Run: func(c *pipeline.Ctx) (any, error) {
				v0, err := c.Input(0)
				if err != nil {
					return nil, err
				}
				v1, err := c.Input(1)
				if err != nil {
					return nil, err
				}
				db, err := v0.(*dedupValue).db.database()
				if err != nil {
					return nil, err
				}
				gt := v1.(*corpus.GroundTruth)
				truthAnn := make(map[string]*core.Annotation)
				for _, e := range gt.DB.Errata() {
					ann := e.Ann
					truthAnn[corpus.EntryRef(e)] = &ann
				}
				truth := func(e *core.Erratum) *core.Annotation {
					return truthAnn[corpus.EntryRef(e)]
				}
				aopts := annotate.DefaultOptions()
				aopts.Seed = opts.Seed
				aopts.Steps = opts.AnnotationSteps
				aopts.Workers = opts.Parallelism
				aopts.Trace = c.Span()
				if opts.AnnotationSteps != 7 && opts.AnnotationSteps > 0 {
					aopts.StepFractions = uniformFractions(opts.AnnotationSteps)
				}
				ares, err := annotate.Run(db, classify.NewEngineConfig(classify.Config{
					Prefilter: true, Memo: true, Obs: reg,
				}), truth, aopts)
				if err != nil {
					return nil, fmt.Errorf("rememberr: annotate: %w", err)
				}
				return &annotateValue{db: &pipeDB{db: db}, res: ares}, nil
			},
			Encode: func(v any) ([]byte, error) {
				av := v.(*annotateValue)
				raw, err := av.db.encoded()
				if err != nil {
					return nil, err
				}
				return json.Marshal(annotateArtifact{DB: raw, Result: av.res})
			},
			Decode: func(b []byte) (any, error) {
				var a annotateArtifact
				if err := json.Unmarshal(b, &a); err != nil {
					return nil, err
				}
				return &annotateValue{db: &pipeDB{raw: a.DB}, res: a.Result}, nil
			},
		},
		{
			ID: "timeline", Version: "v2", Inputs: []string{"annotate"},
			Config: pipeline.Fingerprint("interpolate=" + strconv.FormatBool(opts.Interpolate)),
			Run: func(c *pipeline.Ctx) (any, error) {
				v, err := c.Input(0)
				if err != nil {
					return nil, err
				}
				db, err := v.(*annotateValue).db.database()
				if err != nil {
					return nil, err
				}
				stats := timeline.InferDisclosures(db, timeline.Options{Interpolate: opts.Interpolate})
				return &timelineValue{db: &pipeDB{db: db}, stats: stats}, nil
			},
			Encode: encodeTimelineValue,
			Decode: decodeTimelineValue,
		},
		{
			ID: "validate", Version: "v2", Inputs: []string{"timeline"},
			Run: func(c *pipeline.Ctx) (any, error) {
				v, err := c.Input(0)
				if err != nil {
					return nil, err
				}
				tv := v.(*timelineValue)
				db, err := tv.db.database()
				if err != nil {
					return nil, err
				}
				if err := db.Validate(); err != nil {
					return nil, fmt.Errorf("rememberr: validation: %w", err)
				}
				// Pass the timeline value straight through: the shared
				// pipeDB means the artifact reuses the already-encoded
				// bytes (same digest, deduplicated in the object store).
				return tv, nil
			},
			Encode: encodeTimelineValue,
			Decode: decodeTimelineValue,
		},
	}
}

// assembleBuild turns the runner's per-stage artifacts into the public
// Database and BuildReport, decoding cached artifacts on demand.
func assembleBuild(res *pipeline.Result) (*Database, *BuildReport, error) {
	gtv, err := res.Value("corpus")
	if err != nil {
		return nil, nil, err
	}
	pvv, err := res.Value("parse")
	if err != nil {
		return nil, nil, err
	}
	dvv, err := res.Value("dedup")
	if err != nil {
		return nil, nil, err
	}
	avv, err := res.Value("annotate")
	if err != nil {
		return nil, nil, err
	}
	tvv, err := res.Value("validate")
	if err != nil {
		return nil, nil, err
	}
	gt := gtv.(*corpus.GroundTruth)
	tv := tvv.(*timelineValue)
	db, err := tv.db.database()
	if err != nil {
		return nil, nil, err
	}
	dres, err := reviveDedup(dvv.(*dedupValue).sum, db)
	if err != nil {
		return nil, nil, err
	}
	rep := &BuildReport{
		Diagnostics: pvv.(*parseValue).diags,
		Dedup:       dres,
		Annotation:  avv.(*annotateValue).res,
		Timeline:    tv.stats,
		GroundTruth: gt,
		Trace:       res.Trace,
	}
	return &Database{core: db, report: rep}, rep, nil
}
