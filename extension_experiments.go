package rememberr

import (
	"fmt"
	"strings"

	"repro/internal/report"
)

// Extensions runs the experiments that go beyond the paper's published
// evaluation: the conservative severity grading, the rediscovery table,
// and the directed-testing case study. They are kept separate from
// All() so that the paper-reproduction suite stays exactly the paper's
// tables and figures.
func (x *Experiments) Extensions() []*Experiment {
	return []*Experiment{
		x.ExtSeverity(), x.ExtRediscovery(), x.ExtCaseStudy(),
	}
}

// ExtByID runs one extension experiment by identifier, falling back to
// the paper experiments.
func (x *Experiments) ExtByID(id string) (*Experiment, error) {
	for _, e := range x.Extensions() {
		if e.ID == id {
			return e, nil
		}
	}
	return x.ByID(id)
}

// ExtSeverity grades every unique erratum conservatively and breaks the
// corpus down by severity (the paper's criticality discussion,
// Section V-A4, made quantitative).
func (x *Experiments) ExtSeverity() *Experiment {
	ex := &Experiment{
		ID:         "ext-severity",
		Title:      "Conservative severity breakdown (extension)",
		PaperClaim: "Only a few bugs can be considered non-critical; even wrong performance counters break counter-based security defenses.",
	}
	var b strings.Builder
	var bars []report.Bar
	for _, br := range x.db.Severities() {
		fmt.Fprintf(&b, "%s (%d unique errata):\n", br.Vendor, br.Total)
		for _, sev := range []Severity{SeverityFatal, SeverityCorrupting, SeverityDegrading} {
			n := br.Counts[sev]
			fmt.Fprintf(&b, "  %-12s %4d (%.1f%%)\n", sev, n, 100*float64(n)/float64(br.Total))
			bars = append(bars, report.Bar{
				Label: fmt.Sprintf("%s / %s", br.Vendor, sev),
				Value: float64(n),
			})
		}
		fmt.Fprintf(&b, "  fatal bugs reachable from a VM guest: %d\n", br.GuestReachableFatal)
		// The quantitative form of the paper's claim.
		nonCritical := br.Counts[SeverityDegrading]
		ex.Checks = append(ex.Checks,
			check(fmt.Sprintf("%s: few non-critical bugs", br.Vendor),
				nonCritical*10 < br.Total*2,
				"%d/%d degrading-only", nonCritical, br.Total))
	}
	ex.Text = b.String()
	ex.SVG = report.SVGBarChart("Severity breakdown", bars, 0)
	return ex
}

// ExtRediscovery quantifies the rediscovery question per Intel document.
func (x *Experiments) ExtRediscovery() *Experiment {
	ex := &Experiment{
		ID:         "ext-rediscovery",
		Title:      "Rediscovery of inherited bugs (extension)",
		PaperClaim: "Most design flaws shared between generations were known before releasing the subsequent generation (O4, per document).",
	}
	stats := x.db.Rediscoveries(Intel)
	ex.Text = RenderRediscoveries(stats)
	headers := []string{"Document", "Bugs", "Inherited", "KnownAtRelease"}
	var rows [][]string
	knownTotal, inheritedTotal := 0, 0
	for _, r := range stats {
		rows = append(rows, []string{
			r.DocKey, fmt.Sprintf("%d", r.Keys),
			fmt.Sprintf("%d", r.Inherited), fmt.Sprintf("%d", r.KnownAtRelease),
		})
		knownTotal += r.KnownAtRelease
		inheritedTotal += r.Inherited
	}
	ex.CSV = report.CSV(headers, rows)
	ex.Checks = append(ex.Checks,
		check("substantial heredity", inheritedTotal > 500,
			"%d inherited occurrences", inheritedTotal),
		check("many inherited bugs known at release", knownTotal*2 > inheritedTotal,
			"%d/%d known before the inheriting design shipped", knownTotal, inheritedTotal))
	return ex
}

// ExtCaseStudy runs the directed-testing simulation.
func (x *Experiments) ExtCaseStudy() *Experiment {
	ex := &Experiment{
		ID:         "ext-casestudy",
		Title:      "Directed vs random testing campaign (extension)",
		PaperClaim: "RemembERR-derived trigger interactions and observation points make dynamic testing campaigns more effective (Section VI).",
	}
	res, err := x.db.SimulateDirectedCampaign(DefaultCaseStudyOptions())
	if err != nil {
		ex.Checks = append(ex.Checks, check("simulation ran", false, "%v", err))
		return ex
	}
	ex.Text = RenderCaseStudy(res)
	ex.Checks = append(ex.Checks,
		check("directed beats random on multi-trigger bugs",
			res.Directed.Detected > res.Random.Detected,
			"directed %d vs random %d of %d hidden bugs",
			res.Directed.Detected, res.Random.Detected, res.HiddenBugs),
		check("directed detects faster",
			res.Directed.MedianToDetect >= 0 &&
				(res.Random.MedianToDetect < 0 || res.Directed.MedianToDetect < res.Random.MedianToDetect),
			"median tests to detect: directed %d vs random %d",
			res.Directed.MedianToDetect, res.Random.MedianToDetect))
	return ex
}
