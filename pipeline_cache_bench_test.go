package rememberr

import (
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// The pristine cache is populated once by a default Build and never
// mutated: warm benchmarks either read it directly (fully-warm replays
// write nothing) or copy it so knob-change misses don't pollute later
// iterations.
var (
	pristineOnce sync.Once
	pristineDir  string
	pristineErr  error
)

func pristineCache(b *testing.B) string {
	b.Helper()
	pristineOnce.Do(func() {
		pristineDir, pristineErr = os.MkdirTemp("", "rememberr-bench-cache-")
		if pristineErr != nil {
			return
		}
		_, _, pristineErr = Build(WithCache(pristineDir))
	})
	if pristineErr != nil {
		b.Fatal(pristineErr)
	}
	return pristineDir
}

func copyDir(b *testing.B, src, dst string) {
	b.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipelineColdBuild is the baseline: the full seven-stage
// build with no artifact cache.
func BenchmarkPipelineColdBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineWarmFull replays every stage from a fully populated
// cache: the floor of an incremental rebuild (hash, read, decode).
func BenchmarkPipelineWarmFull(b *testing.B) {
	dir := pristineCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(WithCache(dir)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineWarmKnob measures the single-knob incremental
// rebuild the cache exists for: toggling timeline interpolation against
// a warm cache replays corpus through annotate and re-runs only the
// timeline and validate stages. Each iteration works on a throwaway
// copy of the pristine cache so the knob's artifacts never become warm.
func BenchmarkPipelineWarmKnob(b *testing.B) {
	src := pristineCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "rememberr-bench-knob-")
		if err != nil {
			b.Fatal(err)
		}
		copyDir(b, src, dir)
		b.StartTimer()
		if _, _, err := Build(WithCache(dir), WithInterpolation(false)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}
