package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCollectDocsRecursesDirectories builds a nested corpus layout and
// checks that directory arguments are walked recursively, only .txt
// files are picked up, explicit file arguments pass through untouched,
// and the result is sorted.
func TestCollectDocsRecursesDirectories(t *testing.T) {
	dir := t.TempDir()
	mk := func(rel string) string {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	top := mk("top.txt")
	intel := mk("intel/spec-update.txt")
	deep := mk("intel/gen9/a.txt")
	mk("intel/readme.md") // ignored: not .txt
	amd := mk("amd/rev-guide.txt")
	loose := mk("outside/loose.md") // explicit file arg, any extension

	got, err := collectDocs([]string{dir, loose})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{amd, deep, intel, loose, top}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("collectDocs = %v, want %v", got, want)
	}
}

// TestCollectDocsErrors covers the empty-result and missing-path cases.
func TestCollectDocsErrors(t *testing.T) {
	if _, err := collectDocs([]string{t.TempDir()}); err == nil {
		t.Error("empty directory: expected 'no .txt documents' error")
	}
	if _, err := collectDocs([]string{filepath.Join(t.TempDir(), "absent")}); err == nil {
		t.Error("missing path: expected error")
	}
}
