// Command errlint parses specification-update documents from a
// directory (as written by errgen) and reports every inconsistency the
// parser finds — the "errata in errata" of the paper: duplicate fields,
// reused names, revision notes that double-add or omit errata, summary
// mismatches. Vendors could run exactly this kind of linter before
// publishing a document.
//
// Usage:
//
//	errlint [-kinds] [-by-doc] <dir|file...>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/specdoc"
)

func main() {
	kindsOnly := flag.Bool("kinds", false, "print only the per-kind summary")
	byDoc := flag.Bool("by-doc", false, "group diagnostics by document")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: errlint [-kinds] [-by-doc] <dir|file...>")
		os.Exit(2)
	}

	var files []string
	for _, arg := range flag.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			fatal(err)
		}
		if info.IsDir() {
			entries, err := os.ReadDir(arg)
			if err != nil {
				fatal(err)
			}
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".txt") {
					files = append(files, filepath.Join(arg, e.Name()))
				}
			}
		} else {
			files = append(files, arg)
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		fatal(fmt.Errorf("no .txt documents found"))
	}

	var all []specdoc.Diagnostic
	parsed, entries := 0, 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		doc, diags, err := specdoc.Parse(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "errlint: %s: %v\n", f, err)
			continue
		}
		parsed++
		entries += len(doc.Errata)
		all = append(all, diags...)
	}

	fmt.Printf("parsed %d documents, %d erratum entries, %d diagnostics\n\n",
		parsed, entries, len(all))

	kinds := map[string]int{}
	for _, d := range all {
		kinds[d.Kind]++
	}
	var kindList []string
	for k := range kinds {
		kindList = append(kindList, k)
	}
	sort.Strings(kindList)
	fmt.Println("by kind:")
	for _, k := range kindList {
		fmt.Printf("  %-22s %d\n", k, kinds[k])
	}
	if *kindsOnly {
		return
	}
	fmt.Println()
	if *byDoc {
		byDocMap := map[string][]specdoc.Diagnostic{}
		for _, d := range all {
			byDocMap[d.DocKey] = append(byDocMap[d.DocKey], d)
		}
		var docs []string
		for k := range byDocMap {
			docs = append(docs, k)
		}
		sort.Strings(docs)
		for _, dk := range docs {
			fmt.Printf("%s (%d):\n", dk, len(byDocMap[dk]))
			for _, d := range byDocMap[dk] {
				fmt.Printf("  [%s] %s: %s\n", d.Kind, d.ID, d.Message)
			}
		}
		return
	}
	for _, d := range all {
		fmt.Println(" ", d)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "errlint:", err)
	os.Exit(1)
}
