// Command errlint parses specification-update documents from a
// directory (as written by errgen) and reports every inconsistency the
// parser finds — the "errata in errata" of the paper: duplicate fields,
// reused names, revision notes that double-add or omit errata, summary
// mismatches. Vendors could run exactly this kind of linter before
// publishing a document.
//
// Usage:
//
//	errlint [-kinds] [-by-doc] <dir|file...>
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/specdoc"
)

func main() {
	kindsOnly := flag.Bool("kinds", false, "print only the per-kind summary")
	byDoc := flag.Bool("by-doc", false, "group diagnostics by document")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: errlint [-kinds] [-by-doc] <dir|file...>")
		os.Exit(2)
	}

	files, err := collectDocs(flag.Args())
	if err != nil {
		fatal(err)
	}

	var all []specdoc.Diagnostic
	parsed, entries := 0, 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		doc, diags, err := specdoc.Parse(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "errlint: %s: %v\n", f, err)
			continue
		}
		parsed++
		entries += len(doc.Errata)
		all = append(all, diags...)
	}

	fmt.Printf("parsed %d documents, %d erratum entries, %d diagnostics\n\n",
		parsed, entries, len(all))

	kinds := map[string]int{}
	for _, d := range all {
		kinds[d.Kind]++
	}
	var kindList []string
	for k := range kinds {
		kindList = append(kindList, k)
	}
	sort.Strings(kindList)
	fmt.Println("by kind:")
	for _, k := range kindList {
		fmt.Printf("  %-22s %d\n", k, kinds[k])
	}
	if *kindsOnly {
		return
	}
	fmt.Println()
	if *byDoc {
		byDocMap := map[string][]specdoc.Diagnostic{}
		for _, d := range all {
			byDocMap[d.DocKey] = append(byDocMap[d.DocKey], d)
		}
		var docs []string
		for k := range byDocMap {
			docs = append(docs, k)
		}
		sort.Strings(docs)
		for _, dk := range docs {
			fmt.Printf("%s (%d):\n", dk, len(byDocMap[dk]))
			for _, d := range byDocMap[dk] {
				fmt.Printf("  [%s] %s: %s\n", d.Kind, d.ID, d.Message)
			}
		}
		return
	}
	for _, d := range all {
		fmt.Println(" ", d)
	}
}

// collectDocs resolves the command-line arguments to a sorted list of
// document files: explicit file arguments are taken as-is, directory
// arguments are walked recursively for .txt documents (errgen can lay
// corpora out in per-vendor or per-document subdirectories).
func collectDocs(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".txt") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .txt documents found")
	}
	return files, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "errlint:", err)
	os.Exit(1)
}
