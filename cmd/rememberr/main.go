// Command rememberr builds the RemembERR database and regenerates the
// paper's tables and figures.
//
// Usage:
//
//	rememberr build   [-seed N] [-o db.json] [-format v1|v2] [-cache-dir D] [-trace]  build and save
//	rememberr stats   [-seed N | -db F]              print corpus statistics
//	rememberr experiment <id>|all|ext [-csv-dir D] [-svg-dir D]
//	rememberr list                                   list experiment identifiers
//	rememberr observations                           evaluate O1-O13
//	rememberr query   [filters...]                   count/list matching errata
//	rememberr campaign [-class C] [-n N]             derive a test-campaign plan
//	rememberr casestudy [-tests N] [-monitors N]     directed-vs-random simulation
//	rememberr severity [-top N]                      conservative severity breakdown
//	rememberr rediscovery                            inherited/known-at-release table
//	rememberr report  [-o report.html]               single-page HTML report
//	rememberr taxonomy                               print Tables IV-VI as Markdown
//	rememberr export  [-structured] [-o F]           export JSON (classic or Table VII)
//	rememberr convert -in F [-o F] [-format v1|v2]   convert a saved database between formats
//
// Every data command accepts -seed N (build seed) or -db FILE (load a
// previously saved database, ".gz" supported).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	rememberr "repro"
	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "stats":
		err = cmdStats(args)
	case "experiment":
		err = cmdExperiment(args)
	case "list":
		err = cmdList()
	case "observations":
		err = cmdObservations(args)
	case "query":
		err = cmdQuery(args)
	case "campaign":
		err = cmdCampaign(args)
	case "export":
		err = cmdExport(args)
	case "convert":
		err = cmdConvert(args)
	case "severity":
		err = cmdSeverity(args)
	case "rediscovery":
		err = cmdRediscovery(args)
	case "casestudy":
		err = cmdCaseStudy(args)
	case "report":
		err = cmdReport(args)
	case "taxonomy":
		fmt.Print(rememberr.BaseScheme().Markdown(-1))
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rememberr: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rememberr:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: rememberr <command> [flags]

commands:
  build          build the database end to end and save it as JSON
  stats          print corpus statistics
  experiment     regenerate a table/figure by id, or "all"
  list           list experiment identifiers
  observations   evaluate the paper's observations O1-O13
  query          filter errata (see -help)
  campaign       derive a ranked test-campaign plan (Section VI)
  export         export the database as JSON
  convert        convert a saved database between store formats (v1/v2)
  severity       conservative severity breakdown of the unique errata
  rediscovery    per-document inherited/known-at-release statistics
  casestudy      directed-vs-random testing campaign simulation (Section VI)
  report         write the full reproduction report as one HTML page
  taxonomy       print the 60-category classification scheme (Tables IV-VI)

common flags: -seed N (build seed), -db FILE (load saved JSON instead),
              -parallelism N (pipeline workers; 0 = all CPUs, 1 = sequential),
              -cache-dir D (content-addressed pipeline cache; warm rebuilds
              replay unchanged stages)
`)
}

func buildDB(fs *flag.FlagSet, args []string) (*rememberr.Database, error) {
	seed := fs.Int64("seed", 1, "corpus generator seed")
	dbFile := fs.String("db", "", "load a saved database JSON instead of building")
	par := fs.Int("parallelism", 0, "pipeline worker goroutines (0 = all CPUs, 1 = sequential)")
	cacheDir := fs.String("cache-dir", "", "pipeline artifact cache directory (incremental rebuilds)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *dbFile != "" {
		return rememberr.Load(*dbFile)
	}
	opts := rememberr.DefaultBuildOptions()
	opts.Seed = *seed
	opts.Parallelism = *par
	opts.CacheDir = *cacheDir
	db, _, err := rememberr.Build(opts)
	return db, err
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "rememberr.json", "output file")
	seed := fs.Int64("seed", 1, "corpus generator seed")
	par := fs.Int("parallelism", 0, "pipeline worker goroutines (0 = all CPUs, 1 = sequential)")
	cacheDir := fs.String("cache-dir", "", "pipeline artifact cache directory (incremental rebuilds)")
	format := fs.String("format", "", "store format: v1 (JSON), v2 (zero-decode binary), or empty to pick by filename (.v2 suffix)")
	trace := fs.Bool("trace", false, "print the per-stage build timing tree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	buildOpts := []rememberr.Option{
		rememberr.WithSeed(*seed),
		rememberr.WithParallelism(*par),
	}
	if *cacheDir != "" {
		buildOpts = append(buildOpts, rememberr.WithCache(*cacheDir))
	}
	db, rep, err := rememberr.Build(buildOpts...)
	if err != nil {
		return err
	}
	if err := store.SaveFormat(db.Core(), *out, *format); err != nil {
		return err
	}
	st := db.Stats()
	fmt.Printf("built %d errata (%d unique) across %d documents\n", st.Total, st.Unique, st.Documents)
	fmt.Printf("parser diagnostics: %d; confirmed duplicate pairs: %d; human decisions: %d\n",
		len(rep.Diagnostics), rep.Dedup.ConfirmedPairs, rep.Annotation.HumanDecisions)
	fmt.Printf("saved to %s\n", *out)
	if *trace && rep.Trace != nil {
		fmt.Println("\nbuild stages:")
		printTrace(rep.Trace, 1)
	}
	return nil
}

// printTrace renders one span and its children as an indented tree.
func printTrace(sp *rememberr.TraceSpan, depth int) {
	fmt.Printf("%*s%-10s %12s", depth*2, "", sp.Name, time.Duration(sp.DurationNS).Round(time.Microsecond))
	if sp.Items > 0 {
		fmt.Printf("  (%d items)", sp.Items)
	}
	if sp.Cached {
		fmt.Printf("  [cached]")
	}
	fmt.Println()
	for _, c := range sp.Children {
		printTrace(c, depth+1)
	}
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	db, err := buildDB(fs, args)
	if err != nil {
		return err
	}
	st := db.Stats()
	fmt.Printf("documents:     %d (Intel %d, AMD %d)\n", st.Documents, st.IntelDocs, st.AMDDocs)
	fmt.Printf("errata:        %d (Intel %d, AMD %d)\n", st.Total, st.IntelTotal, st.AMDTotal)
	fmt.Printf("unique errata: %d (Intel %d, AMD %d)\n", st.Unique, st.IntelUnique, st.AMDUnique)
	fmt.Printf("annotated:     %d\n", st.Annotated)
	return nil
}

func cmdList() error {
	db, _, err := rememberr.Build(rememberr.DefaultBuildOptions())
	if err != nil {
		return err
	}
	for _, ex := range rememberr.NewExperiments(db).All() {
		fmt.Printf("%-20s %s\n", ex.ID, ex.Title)
	}
	return nil
}

func cmdExperiment(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("experiment: missing id (try 'rememberr list')")
	}
	id := args[0]
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	csvDir := fs.String("csv-dir", "", "also write per-experiment CSV files to this directory")
	svgDir := fs.String("svg-dir", "", "also write per-figure SVG files to this directory")
	db, err := buildDB(fs, args[1:])
	if err != nil {
		return err
	}
	x := rememberr.NewExperiments(db)
	var exps []*rememberr.Experiment
	switch id {
	case "all":
		exps = x.All()
	case "ext", "extensions":
		exps = x.Extensions()
	default:
		ex, err := x.ExtByID(id)
		if err != nil {
			return err
		}
		exps = []*rememberr.Experiment{ex}
	}
	for _, ex := range exps {
		fmt.Printf("=== %s: %s ===\n", ex.ID, ex.Title)
		fmt.Printf("paper: %s\n\n", ex.PaperClaim)
		fmt.Println(ex.Text)
		for _, c := range ex.Checks {
			mark := "PASS"
			if !c.Pass {
				mark = "FAIL"
			}
			fmt.Printf("[%s] %s — %s\n", mark, c.Name, c.Detail)
		}
		fmt.Println()
		if *csvDir != "" && ex.CSV != "" {
			if err := writeArtifact(*csvDir, ex.ID+".csv", ex.CSV); err != nil {
				return err
			}
		}
		if *svgDir != "" && ex.SVG != "" {
			if err := writeArtifact(*svgDir, ex.ID+".svg", ex.SVG); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeArtifact(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}

func cmdObservations(args []string) error {
	fs := flag.NewFlagSet("observations", flag.ExitOnError)
	db, err := buildDB(fs, args)
	if err != nil {
		return err
	}
	for _, o := range db.Observations() {
		mark := "HOLDS"
		if !o.Holds {
			mark = "FAILS"
		}
		fmt.Printf("[%s] %s: %s\n        evidence: %s\n", mark, o.ID, o.Statement, o.Evidence)
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	vendor := fs.String("vendor", "", "Intel or AMD")
	category := fs.String("category", "", "abstract category, e.g. Trg_POW_pwc")
	class := fs.String("class", "", "class descriptor, e.g. Trg_POW")
	minTriggers := fs.Int("min-triggers", 0, "minimum number of distinct triggers")
	msr := fs.String("msr", "", "observable MSR, e.g. MCx_STATUS")
	title := fs.String("title", "", "title substring")
	complexOnly := fs.Bool("complex", false, "complex-condition errata only")
	listTitles := fs.Bool("titles", false, "print matching titles")
	db, err := buildDB(fs, args)
	if err != nil {
		return err
	}
	q := db.Query()
	if *vendor != "" {
		switch strings.ToLower(*vendor) {
		case "intel":
			q = q.Vendor(rememberr.Intel)
		case "amd":
			q = q.Vendor(rememberr.AMD)
		default:
			return fmt.Errorf("unknown vendor %q", *vendor)
		}
	}
	if *category != "" {
		q = q.WithCategory(*category)
	}
	if *class != "" {
		q = q.WithClass(*class)
	}
	if *minTriggers > 0 {
		q = q.MinTriggers(*minTriggers)
	}
	if *msr != "" {
		q = q.ObservableIn(*msr)
	}
	if *title != "" {
		q = q.TitleContains(*title)
	}
	if *complexOnly {
		q = q.Complex()
	}
	matches := q.Unique()
	fmt.Printf("%d unique errata match\n", len(matches))
	if *listTitles {
		for _, e := range matches {
			fmt.Printf("  %-12s %s\n", e.FullID(), e.Title)
		}
	}
	return nil
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	class := fs.String("class", "", "focus trigger class, e.g. Trg_POW")
	n := fs.Int("n", 10, "maximum directives")
	db, err := buildDB(fs, args)
	if err != nil {
		return err
	}
	opts := rememberr.DefaultCampaignOptions()
	opts.FocusClass = *class
	opts.MaxDirectives = *n
	plan := db.PlanCampaign(opts)
	fmt.Print(rememberr.RenderPlan(plan))
	return nil
}

func cmdSeverity(args []string) error {
	fs := flag.NewFlagSet("severity", flag.ExitOnError)
	top := fs.Int("top", 0, "also list the N most critical errata per vendor")
	db, err := buildDB(fs, args)
	if err != nil {
		return err
	}
	for _, b := range db.Severities() {
		fmt.Printf("%s (%d unique errata):\n", b.Vendor, b.Total)
		for _, sev := range []rememberr.Severity{rememberr.SeverityFatal,
			rememberr.SeverityCorrupting, rememberr.SeverityDegrading, rememberr.SeverityUnknown} {
			if n := b.Counts[sev]; n > 0 {
				fmt.Printf("  %-12s %4d (%.1f%%)\n", sev, n, 100*float64(n)/float64(b.Total))
			}
		}
		fmt.Printf("  fatal and reachable from a VM guest: %d\n", b.GuestReachableFatal)
		if *top > 0 {
			vendor := rememberr.Intel
			if b.Vendor == rememberr.AMD {
				vendor = rememberr.AMD
			}
			for _, e := range db.MostCritical(vendor, *top) {
				fmt.Printf("    %-10s [%s] %s\n", e.Key, db.Grade(e), e.Title)
			}
		}
	}
	return nil
}

func cmdRediscovery(args []string) error {
	fs := flag.NewFlagSet("rediscovery", flag.ExitOnError)
	db, err := buildDB(fs, args)
	if err != nil {
		return err
	}
	fmt.Print(rememberr.RenderRediscoveries(db.Rediscoveries(rememberr.Intel)))
	return nil
}

func cmdCaseStudy(args []string) error {
	fs := flag.NewFlagSet("casestudy", flag.ExitOnError)
	tests := fs.Int("tests", 600, "test budget per strategy")
	bugs := fs.Int("bugs", 40, "hidden bug population")
	monitors := fs.Int("monitors", 4, "observation budget per test")
	db, err := buildDB(fs, args)
	if err != nil {
		return err
	}
	opts := rememberr.DefaultCaseStudyOptions()
	opts.Tests = *tests
	opts.Bugs = *bugs
	opts.ObservationBudget = *monitors
	res, err := db.SimulateDirectedCampaign(opts)
	if err != nil {
		return err
	}
	fmt.Print(rememberr.RenderCaseStudy(res))
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	out := fs.String("o", "report.html", "output HTML file")
	db, err := buildDB(fs, args)
	if err != nil {
		return err
	}
	page := rememberr.HTMLReport(db)
	if err := os.WriteFile(*out, []byte(page), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes to %s\n", len(page), *out)
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	out := fs.String("o", "rememberr.json", "output file")
	structured := fs.Bool("structured", false, "export in the proposed Table VII format")
	db, err := buildDB(fs, args)
	if err != nil {
		return err
	}
	var data []byte
	if *structured {
		data, err = store.EncodeStructured(db.Core())
	} else {
		data, err = store.Encode(db.Core())
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes to %s\n", len(data), *out)
	return nil
}

// cmdConvert rereads a saved database in whatever format it is in
// (sniffed from the content) and rewrites it in the requested one, so
// existing v1 archives can move to the zero-decode FormatVersion 2
// layout — and back — without a rebuild.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input database file (v1 or v2, .gz supported)")
	out := fs.String("o", "", "output file (default: input with .v2 added or removed)")
	format := fs.String("format", "", "target format: v1, v2, or empty to pick by output filename")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("convert: -in is required")
	}
	// Open the source mmap-backed where possible: the conversion then
	// holds one materialized database plus the encoder's section buffers,
	// never a second full copy of the input — and SaveFormat streams the
	// output through a temp file, so the encoded bytes are not buffered
	// alongside the database either.
	r, err := store.Open(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	db, err := r.Database()
	if err != nil {
		return err
	}
	target := *out
	if target == "" {
		// Derive a sibling name: toggle the ".v2" marker before any ".gz".
		gz := strings.HasSuffix(*in, ".gz")
		base := strings.TrimSuffix(*in, ".gz")
		if strings.HasSuffix(base, ".v2") {
			base = strings.TrimSuffix(base, ".v2")
		} else {
			base += ".v2"
		}
		target = base
		if gz {
			target += ".gz"
		}
	}
	if err := store.SaveFormat(db, target, *format); err != nil {
		return err
	}
	fi, err := os.Stat(target)
	if err != nil {
		return err
	}
	fmt.Printf("converted %s -> %s (%d bytes)\n", *in, target, fi.Size())
	return nil
}
