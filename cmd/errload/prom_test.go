package main

import (
	"math"
	"strings"
	"testing"
)

const sampleExposition = `# HELP rememberr_http_request_duration_seconds HTTP request latency, by endpoint.
# TYPE rememberr_http_request_duration_seconds histogram
rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.001"} 10
rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.01"} 70
rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.1"} 95
rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="+Inf"} 100
rememberr_http_request_duration_seconds_sum{endpoint="errata"} 1.5
rememberr_http_request_duration_seconds_count{endpoint="errata"} 100
rememberr_http_request_duration_seconds_bucket{endpoint="stats",le="0.001"} 4
rememberr_http_request_duration_seconds_bucket{endpoint="stats",le="0.01"} 4
rememberr_http_request_duration_seconds_bucket{endpoint="stats",le="0.1"} 4
rememberr_http_request_duration_seconds_bucket{endpoint="stats",le="+Inf"} 4
rememberr_http_request_duration_seconds_sum{endpoint="stats"} 0.002
rememberr_http_request_duration_seconds_count{endpoint="stats"} 4
# TYPE rememberr_http_requests_total counter
rememberr_http_requests_total{endpoint="errata"} 100
# TYPE rememberr_shard_fanout_duration_seconds histogram
rememberr_shard_fanout_duration_seconds_bucket{shard="0",le="+Inf"} 7
rememberr_shard_fanout_duration_seconds_sum{shard="0"} 0.01
rememberr_shard_fanout_duration_seconds_count{shard="0"} 7
`

func parseSample(t *testing.T) map[string]*promHist {
	t.Helper()
	hists, err := parseHistograms(strings.NewReader(sampleExposition), durationFamily, "endpoint")
	if err != nil {
		t.Fatal(err)
	}
	return hists
}

func TestParseHistograms(t *testing.T) {
	hists := parseSample(t)
	if len(hists) != 2 {
		t.Fatalf("parsed %d series, want 2 (errata, stats)", len(hists))
	}
	h := hists["errata"]
	if h == nil {
		t.Fatal("missing errata series")
	}
	if h.count != 100 || h.sum != 1.5 {
		t.Fatalf("errata count/sum = %d/%v, want 100/1.5", h.count, h.sum)
	}
	wantBounds := []float64{0.001, 0.01, 0.1}
	if len(h.bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v, want %v", h.bounds, wantBounds)
	}
	for i, b := range wantBounds {
		if h.bounds[i] != b {
			t.Fatalf("bounds = %v, want %v", h.bounds, wantBounds)
		}
	}
	wantCounts := []uint64{10, 70, 95, 100}
	for i, c := range wantCounts {
		if h.counts[i] != c {
			t.Fatalf("counts = %v, want %v", h.counts, wantCounts)
		}
	}
	// The shard-fanout family shares no observations with the request
	// family and must not bleed in.
	if _, leaked := hists["0"]; leaked {
		t.Fatal("shard fan-out series leaked into the request-duration parse")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := parseSample(t)["errata"]
	// p50: target rank 50 lands in the (0.001, 0.01] bucket holding
	// ranks 11..70, interpolated 0.001 + 0.009*(50-10)/60.
	want := 0.001 + 0.009*40.0/60.0
	if got := h.quantile(0.50); math.Abs(got-want) > 1e-12 {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	// p99: rank 99 lands in the (0.1, +Inf] bucket and clamps to the
	// largest finite bound.
	if got := h.quantile(0.99); got != 0.1 {
		t.Fatalf("p99 = %v, want clamp to 0.1", got)
	}
	// Empty histogram.
	if got := (&promHist{}).quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestDelta(t *testing.T) {
	before := parseSample(t)["errata"]
	after := before.clone()
	for i := range after.counts {
		after.counts[i] += uint64((i + 1) * 5)
	}
	after.count += 20
	after.sum += 0.25

	d, err := after.delta(before)
	if err != nil {
		t.Fatal(err)
	}
	if d.count != 20 {
		t.Fatalf("delta count = %d, want 20", d.count)
	}
	if math.Abs(d.sum-0.25) > 1e-12 {
		t.Fatalf("delta sum = %v, want 0.25", d.sum)
	}
	for i := range d.counts {
		if want := uint64((i + 1) * 5); d.counts[i] != want {
			t.Fatalf("delta counts[%d] = %d, want %d", i, d.counts[i], want)
		}
	}
	// A nil baseline (first scrape) passes through unchanged.
	if d, err := after.delta(nil); err != nil || d.count != after.count {
		t.Fatalf("nil-baseline delta = %v, %v", d, err)
	}
	// Counters going backwards (server restart) are an error, not a
	// silent wrap-around.
	if _, err := before.delta(after); err == nil {
		t.Fatal("backwards delta succeeded; want error")
	}
}

func TestParseLabels(t *testing.T) {
	labels, err := parseLabels(`endpoint="errata",le="+Inf"`)
	if err != nil {
		t.Fatal(err)
	}
	if labels["endpoint"] != "errata" || labels["le"] != "+Inf" {
		t.Fatalf("labels = %v", labels)
	}
	labels, err = parseLabels(`name="a\"b\\c\nd"`)
	if err != nil {
		t.Fatal(err)
	}
	if labels["name"] != "a\"b\\c\nd" {
		t.Fatalf("escaped label = %q", labels["name"])
	}
	for _, bad := range []string{`name`, `name=`, `name="unterminated`, `name="x\`} {
		if _, err := parseLabels(bad); err == nil {
			t.Fatalf("parseLabels(%q) succeeded; want error", bad)
		}
	}
}

func TestClientQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := clientQuantile(sorted, 0.5); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := clientQuantile(sorted, 0.99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
	if got := clientQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
	if got := clientQuantile([]float64{42}, 0.01); got != 42 {
		t.Fatalf("single-sample low quantile = %v, want 42", got)
	}
}

func TestBuildTraffic(t *testing.T) {
	withKeys := buildTraffic("http://x", []string{"k1", "k2"})
	var lookups, stats int
	for _, u := range withKeys {
		if strings.Contains(u, "/v1/errata/k") {
			lookups++
		}
		if strings.HasSuffix(u, "/v1/stats") {
			stats++
		}
	}
	if lookups == 0 || stats == 0 {
		t.Fatalf("traffic mix missing lookups (%d) or stats (%d): %v", lookups, stats, withKeys)
	}
	for _, u := range buildTraffic("http://x", nil) {
		if strings.Contains(u, "/v1/errata/k") {
			t.Fatalf("keyless traffic contains point lookup %s", u)
		}
	}
}

// TestParseHistogramsExemplars pins exemplar tolerance: OpenMetrics
// emitters append "# {labels} value [ts]" after the sample value, whose
// own braces and value must not confuse the label scan or the number
// parse. Timestamps after the value are likewise skipped.
func TestParseHistogramsExemplars(t *testing.T) {
	exposition := `
rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.01"} 7 # {trace_id="ab}c"} 0.004 1700000000
rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="+Inf"} 9 # {trace_id="def"} 0.2
rememberr_http_request_duration_seconds_sum{endpoint="errata"} 0.5 1700000000123
rememberr_http_request_duration_seconds_count{endpoint="errata"} 9
`
	hists, err := parseHistograms(strings.NewReader(exposition), durationFamily, "endpoint")
	if err != nil {
		t.Fatalf("parseHistograms: %v", err)
	}
	h := hists["errata"]
	if h == nil {
		t.Fatal("missing errata series")
	}
	if len(h.bounds) != 1 || h.bounds[0] != 0.01 {
		t.Fatalf("bounds = %v, want [0.01]", h.bounds)
	}
	if len(h.counts) != 2 || h.counts[0] != 7 || h.counts[1] != 9 {
		t.Fatalf("counts = %v, want [7 9]", h.counts)
	}
	if h.sum != 0.5 || h.count != 9 {
		t.Fatalf("sum/count = %v/%d, want 0.5/9", h.sum, h.count)
	}
}

// TestParseHistogramsInfSpellings pins the le-bound hygiene: "NaN" is
// rejected (it would poison the bound sort), negative infinity is
// rejected, and the non-canonical "Inf"/"inf"/"+inf" spellings fold
// into the +Inf bucket instead of landing an infinite "finite" bound.
func TestParseHistogramsInfSpellings(t *testing.T) {
	for _, bad := range []string{"NaN", "nan", "-Inf"} {
		exposition := `rememberr_http_request_duration_seconds_bucket{endpoint="e",le="` + bad + `"} 1
`
		if _, err := parseHistograms(strings.NewReader(exposition), durationFamily, "endpoint"); err == nil {
			t.Fatalf("le=%q accepted", bad)
		}
	}
	for _, spelling := range []string{"Inf", "inf", "+inf"} {
		exposition := `
rememberr_http_request_duration_seconds_bucket{endpoint="e",le="0.1"} 3
rememberr_http_request_duration_seconds_bucket{endpoint="e",le="` + spelling + `"} 5
rememberr_http_request_duration_seconds_count{endpoint="e"} 5
`
		hists, err := parseHistograms(strings.NewReader(exposition), durationFamily, "endpoint")
		if err != nil {
			t.Fatalf("le=%q: %v", spelling, err)
		}
		h := hists["e"]
		if len(h.bounds) != 1 || h.bounds[0] != 0.1 {
			t.Fatalf("le=%q: bounds = %v, want [0.1]", spelling, h.bounds)
		}
		if len(h.counts) != 2 || h.counts[1] != 5 {
			t.Fatalf("le=%q: counts = %v, want [3 5]", spelling, h.counts)
		}
	}
}

// TestParseHistogramsMissingInf pins the missing-+Inf fallback: the
// series count supplies the +Inf bucket when an emitter omits it, and a
// count below the last finite bucket is rejected as inconsistent.
func TestParseHistogramsMissingInf(t *testing.T) {
	exposition := `
rememberr_http_request_duration_seconds_bucket{endpoint="e",le="0.01"} 2
rememberr_http_request_duration_seconds_bucket{endpoint="e",le="0.1"} 6
rememberr_http_request_duration_seconds_sum{endpoint="e"} 0.4
rememberr_http_request_duration_seconds_count{endpoint="e"} 8
`
	hists, err := parseHistograms(strings.NewReader(exposition), durationFamily, "endpoint")
	if err != nil {
		t.Fatalf("parseHistograms: %v", err)
	}
	h := hists["e"]
	if len(h.counts) != 3 || h.counts[2] != 8 {
		t.Fatalf("counts = %v, want [2 6 8]", h.counts)
	}
	if got := h.quantile(0.5); got <= 0.01 || got > 0.1 {
		t.Fatalf("p50 = %v, want inside (0.01, 0.1]", got)
	}

	inconsistent := `
rememberr_http_request_duration_seconds_bucket{endpoint="e",le="0.1"} 6
rememberr_http_request_duration_seconds_count{endpoint="e"} 3
`
	if _, err := parseHistograms(strings.NewReader(inconsistent), durationFamily, "endpoint"); err == nil {
		t.Fatal("count below last bucket accepted")
	}
}
