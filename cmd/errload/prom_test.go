package main

import (
	"math"
	"strings"
	"testing"
)

const sampleExposition = `# HELP rememberr_http_request_duration_seconds HTTP request latency, by endpoint.
# TYPE rememberr_http_request_duration_seconds histogram
rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.001"} 10
rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.01"} 70
rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.1"} 95
rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="+Inf"} 100
rememberr_http_request_duration_seconds_sum{endpoint="errata"} 1.5
rememberr_http_request_duration_seconds_count{endpoint="errata"} 100
rememberr_http_request_duration_seconds_bucket{endpoint="stats",le="0.001"} 4
rememberr_http_request_duration_seconds_bucket{endpoint="stats",le="0.01"} 4
rememberr_http_request_duration_seconds_bucket{endpoint="stats",le="0.1"} 4
rememberr_http_request_duration_seconds_bucket{endpoint="stats",le="+Inf"} 4
rememberr_http_request_duration_seconds_sum{endpoint="stats"} 0.002
rememberr_http_request_duration_seconds_count{endpoint="stats"} 4
# TYPE rememberr_http_requests_total counter
rememberr_http_requests_total{endpoint="errata"} 100
# TYPE rememberr_shard_fanout_duration_seconds histogram
rememberr_shard_fanout_duration_seconds_bucket{shard="0",le="+Inf"} 7
rememberr_shard_fanout_duration_seconds_sum{shard="0"} 0.01
rememberr_shard_fanout_duration_seconds_count{shard="0"} 7
`

func parseSample(t *testing.T) map[string]*promHist {
	t.Helper()
	hists, err := parseHistograms(strings.NewReader(sampleExposition), durationFamily, "endpoint")
	if err != nil {
		t.Fatal(err)
	}
	return hists
}

func TestParseHistograms(t *testing.T) {
	hists := parseSample(t)
	if len(hists) != 2 {
		t.Fatalf("parsed %d series, want 2 (errata, stats)", len(hists))
	}
	h := hists["errata"]
	if h == nil {
		t.Fatal("missing errata series")
	}
	if h.count != 100 || h.sum != 1.5 {
		t.Fatalf("errata count/sum = %d/%v, want 100/1.5", h.count, h.sum)
	}
	wantBounds := []float64{0.001, 0.01, 0.1}
	if len(h.bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v, want %v", h.bounds, wantBounds)
	}
	for i, b := range wantBounds {
		if h.bounds[i] != b {
			t.Fatalf("bounds = %v, want %v", h.bounds, wantBounds)
		}
	}
	wantCounts := []uint64{10, 70, 95, 100}
	for i, c := range wantCounts {
		if h.counts[i] != c {
			t.Fatalf("counts = %v, want %v", h.counts, wantCounts)
		}
	}
	// The shard-fanout family shares no observations with the request
	// family and must not bleed in.
	if _, leaked := hists["0"]; leaked {
		t.Fatal("shard fan-out series leaked into the request-duration parse")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := parseSample(t)["errata"]
	// p50: target rank 50 lands in the (0.001, 0.01] bucket holding
	// ranks 11..70, interpolated 0.001 + 0.009*(50-10)/60.
	want := 0.001 + 0.009*40.0/60.0
	if got := h.quantile(0.50); math.Abs(got-want) > 1e-12 {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	// p99: rank 99 lands in the (0.1, +Inf] bucket and clamps to the
	// largest finite bound.
	if got := h.quantile(0.99); got != 0.1 {
		t.Fatalf("p99 = %v, want clamp to 0.1", got)
	}
	// Empty histogram.
	if got := (&promHist{}).quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestDelta(t *testing.T) {
	before := parseSample(t)["errata"]
	after := before.clone()
	for i := range after.counts {
		after.counts[i] += uint64((i + 1) * 5)
	}
	after.count += 20
	after.sum += 0.25

	d, err := after.delta(before)
	if err != nil {
		t.Fatal(err)
	}
	if d.count != 20 {
		t.Fatalf("delta count = %d, want 20", d.count)
	}
	if math.Abs(d.sum-0.25) > 1e-12 {
		t.Fatalf("delta sum = %v, want 0.25", d.sum)
	}
	for i := range d.counts {
		if want := uint64((i + 1) * 5); d.counts[i] != want {
			t.Fatalf("delta counts[%d] = %d, want %d", i, d.counts[i], want)
		}
	}
	// A nil baseline (first scrape) passes through unchanged.
	if d, err := after.delta(nil); err != nil || d.count != after.count {
		t.Fatalf("nil-baseline delta = %v, %v", d, err)
	}
	// Counters going backwards (server restart) are an error, not a
	// silent wrap-around.
	if _, err := before.delta(after); err == nil {
		t.Fatal("backwards delta succeeded; want error")
	}
}

func TestParseLabels(t *testing.T) {
	labels, err := parseLabels(`endpoint="errata",le="+Inf"`)
	if err != nil {
		t.Fatal(err)
	}
	if labels["endpoint"] != "errata" || labels["le"] != "+Inf" {
		t.Fatalf("labels = %v", labels)
	}
	labels, err = parseLabels(`name="a\"b\\c\nd"`)
	if err != nil {
		t.Fatal(err)
	}
	if labels["name"] != "a\"b\\c\nd" {
		t.Fatalf("escaped label = %q", labels["name"])
	}
	for _, bad := range []string{`name`, `name=`, `name="unterminated`, `name="x\`} {
		if _, err := parseLabels(bad); err == nil {
			t.Fatalf("parseLabels(%q) succeeded; want error", bad)
		}
	}
}

func TestClientQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := clientQuantile(sorted, 0.5); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := clientQuantile(sorted, 0.99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
	if got := clientQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
	if got := clientQuantile([]float64{42}, 0.01); got != 42 {
		t.Fatalf("single-sample low quantile = %v, want 42", got)
	}
}

func TestBuildTraffic(t *testing.T) {
	withKeys := buildTraffic("http://x", []string{"k1", "k2"})
	var lookups, stats int
	for _, u := range withKeys {
		if strings.Contains(u, "/v1/errata/k") {
			lookups++
		}
		if strings.HasSuffix(u, "/v1/stats") {
			stats++
		}
	}
	if lookups == 0 || stats == 0 {
		t.Fatalf("traffic mix missing lookups (%d) or stats (%d): %v", lookups, stats, withKeys)
	}
	for _, u := range buildTraffic("http://x", nil) {
		if strings.Contains(u, "/v1/errata/k") {
			t.Fatalf("keyless traffic contains point lookup %s", u)
		}
	}
}
