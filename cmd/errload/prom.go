package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// promHist is one endpoint's request-duration histogram as scraped from
// the Prometheus text exposition: cumulative bucket counts over the
// upper bounds, plus the +Inf bucket as the final entry.
type promHist struct {
	bounds []float64 // finite upper bounds, ascending
	counts []uint64  // cumulative; len(bounds)+1, last is +Inf
	sum    float64
	count  uint64
}

// clone returns a deep copy so delta() can subtract in place.
func (h *promHist) clone() *promHist {
	c := &promHist{
		bounds: append([]float64(nil), h.bounds...),
		counts: append([]uint64(nil), h.counts...),
		sum:    h.sum,
		count:  h.count,
	}
	return c
}

// delta subtracts a baseline scrape from this one, yielding the
// histogram of only the observations that landed between the two
// scrapes. The bucket layouts must match (same registry, same family).
func (h *promHist) delta(base *promHist) (*promHist, error) {
	if base == nil {
		return h.clone(), nil
	}
	if len(base.counts) != len(h.counts) {
		return nil, fmt.Errorf("bucket layout changed between scrapes: %d vs %d buckets",
			len(base.counts), len(h.counts))
	}
	d := h.clone()
	for i := range d.counts {
		if base.counts[i] > d.counts[i] {
			return nil, fmt.Errorf("bucket %d went backwards (%d -> %d); server restarted mid-run?",
				i, base.counts[i], d.counts[i])
		}
		d.counts[i] -= base.counts[i]
	}
	if base.count > d.count {
		return nil, fmt.Errorf("histogram count went backwards; server restarted mid-run?")
	}
	d.count -= base.count
	d.sum -= base.sum
	return d, nil
}

// quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the owning bucket, the same estimate
// histogram_quantile() computes. Observations in the +Inf bucket clamp
// to the largest finite bound. Returns 0 for an empty histogram.
func (h *promHist) quantile(q float64) float64 {
	if h.count == 0 || len(h.counts) == 0 {
		return 0
	}
	target := q * float64(h.count)
	for i, c := range h.counts {
		if float64(c) < target {
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo, loCount := 0.0, uint64(0)
		if i > 0 {
			lo, loCount = h.bounds[i-1], h.counts[i-1]
		}
		width := float64(c - loCount)
		if width == 0 {
			return h.bounds[i]
		}
		return lo + (h.bounds[i]-lo)*(target-float64(loCount))/width
	}
	return h.bounds[len(h.bounds)-1]
}

// parseLabels splits a Prometheus label body (the text between braces)
// into a name->value map, handling the \" \\ \n escapes the exposition
// format defines.
func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label body %q", body)
		}
		name := strings.TrimPrefix(strings.TrimSpace(body[:eq]), ",")
		name = strings.TrimSpace(name)
		var val strings.Builder
		i := eq + 2
		for ; i < len(body); i++ {
			switch body[i] {
			case '\\':
				if i+1 >= len(body) {
					return nil, fmt.Errorf("dangling escape in %q", body)
				}
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i])
				}
			case '"':
				goto closed
			default:
				val.WriteByte(body[i])
			}
		}
		return nil, fmt.Errorf("unterminated label value in %q", body)
	closed:
		labels[name] = val.String()
		body = body[i+1:]
	}
	return labels, nil
}

// parseHistograms extracts every series of one histogram family (by
// bare name, e.g. "rememberr_http_request_duration_seconds") from a
// Prometheus text exposition, keyed by the value of keyLabel
// (e.g. "endpoint").
func parseHistograms(r io.Reader, family, keyLabel string) (map[string]*promHist, error) {
	type rawBucket struct {
		le  float64
		cum uint64
	}
	buckets := map[string][]rawBucket{}
	hists := map[string]*promHist{}
	get := func(key string) *promHist {
		h, ok := hists[key]
		if !ok {
			h = &promHist{}
			hists[key] = h
		}
		return h
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		var suffix string
		switch {
		case strings.HasPrefix(rest, "_bucket{"):
			suffix, rest = "bucket", rest[len("_bucket"):]
		case strings.HasPrefix(rest, "_sum{"), strings.HasPrefix(rest, "_sum "):
			suffix, rest = "sum", rest[len("_sum"):]
		case strings.HasPrefix(rest, "_count{"), strings.HasPrefix(rest, "_count "):
			suffix, rest = "count", rest[len("_count"):]
		default:
			continue // another family sharing the prefix
		}
		var labels map[string]string
		if strings.HasPrefix(rest, "{") {
			// The closing brace must be found quote-aware: an OpenMetrics
			// exemplar appends its own "{...}" after the value, so the
			// last '}' on the line is not necessarily the label section's.
			close := labelEnd(rest)
			if close < 0 {
				return nil, fmt.Errorf("unterminated labels: %s", line)
			}
			var err error
			if labels, err = parseLabels(rest[1:close]); err != nil {
				return nil, fmt.Errorf("%s: %w", line, err)
			}
			rest = rest[close+1:]
		}
		valStr := valueField(rest)
		key := labels[keyLabel]
		switch suffix {
		case "bucket":
			cum, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad bucket count %q: %w", valStr, err)
			}
			le := labels["le"]
			bound := 0.0
			if le == "+Inf" {
				bound = inf
			} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
				return nil, fmt.Errorf("bad le %q: %w", le, err)
			}
			// ParseFloat accepts spellings the exposition format does not
			// promise: "NaN" would poison the bound sort (every comparison
			// false), and "Inf"/"inf"/"+inf" would land an infinite bound
			// in the finite list, misaligning counts against bounds. Fold
			// infinity spellings into the +Inf bucket and reject the rest.
			if math.IsNaN(bound) || math.IsInf(bound, -1) {
				return nil, fmt.Errorf("bad le %q", le)
			}
			if math.IsInf(bound, 1) {
				bound = inf
			}
			buckets[key] = append(buckets[key], rawBucket{bound, cum})
		case "sum":
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				return nil, fmt.Errorf("bad sum %q: %w", valStr, err)
			}
			get(key).sum = v
		case "count":
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad count %q: %w", valStr, err)
			}
			get(key).count = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		h := get(key)
		for _, b := range bs {
			if b.le == inf {
				h.counts = append(h.counts, b.cum)
				continue
			}
			h.bounds = append(h.bounds, b.le)
			h.counts = append(h.counts, b.cum)
		}
		// The format requires each series to end with +Inf, but some
		// emitters omit it; the series count carries the same total, so
		// synthesize the bucket from it rather than failing the scrape.
		if len(h.counts) == len(h.bounds) && len(h.bounds) > 0 {
			if h.count < h.counts[len(h.counts)-1] {
				return nil, fmt.Errorf("series %q: count %d below last bucket %d",
					key, h.count, h.counts[len(h.counts)-1])
			}
			h.counts = append(h.counts, h.count)
		}
		if len(h.counts) != len(h.bounds)+1 {
			return nil, fmt.Errorf("series %q: %d buckets for %d bounds", key, len(h.counts), len(h.bounds))
		}
	}
	return hists, nil
}

// labelEnd returns the index of the '}' closing the label section that
// starts at s[0] == '{', honoring quoted values and their escapes; -1
// when unterminated.
func labelEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

// valueField isolates the sample value from what follows the label
// section: an optional timestamp and an OpenMetrics exemplar
// ("# {...} value [ts]") may trail it.
func valueField(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	if f := strings.Fields(s); len(f) > 0 {
		return f[0]
	}
	return strings.TrimSpace(s)
}

var inf = func() float64 {
	v, _ := strconv.ParseFloat("+Inf", 64)
	return v
}()

// clientQuantile returns the q-quantile of observed client latencies
// (seconds) by nearest-rank on the sorted sample.
func clientQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
