// Command errload is a closed-loop load generator for errserve with
// latency SLO assertions.
//
// Usage:
//
//	errload -url http://localhost:8372 [-rps 200] [-duration 10s]
//	        [-workers 8] [-slo-p50 20ms] [-slo-p99 200ms] [-out FILE]
//
// It drives a deterministic mix of traffic at the target server —
// filtered /v1/errata queries cycling through the serving filter
// vocabulary, /v1/errata/{key} point lookups over keys harvested from
// an initial bootstrap query, and /v1/stats — at the requested
// aggregate rate. Client-side latency percentiles are computed from
// the full sample; server-side per-endpoint percentiles come from the
// /metrics Prometheus histograms, scraped before and after the run and
// differenced so only this run's observations count.
//
// The SLO gates (-slo-p50/-slo-p99, zero disables) are asserted
// against the server-side "errata" endpoint histogram delta. On
// violation — or any request error — the JSON report is still written
// and the exit status is non-zero, so CI and bench scripts can gate on
// it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const durationFamily = "rememberr_http_request_duration_seconds"

// queryMix is the /v1/errata vocabulary the generator cycles through:
// broad scans, selective filters, compound filters and pagination, so
// cache hits and full scatter-gather fan-outs both occur.
var queryMix = []string{
	"/v1/errata?limit=20",
	"/v1/errata?vendor=Intel&limit=20",
	"/v1/errata?vendor=AMD&limit=20",
	"/v1/errata?class=Trg_POW&limit=20",
	"/v1/errata?category=Eff_HNG_hng",
	"/v1/errata?vendor=Intel&class=Trg_POW&min_triggers=1&limit=10",
	"/v1/errata?unique=false&limit=50",
	"/v1/errata?offset=40&limit=20",
	"/v1/errata?title=the&limit=10",
	"/v1/errata?min_triggers=2&limit=20",
}

type report struct {
	URL       string  `json:"url"`
	RPS       float64 `json:"target_rps"`
	Duration  string  `json:"duration"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	ActualRPS float64 `json:"actual_rps"`

	Client struct {
		P50 float64 `json:"p50_seconds"`
		P90 float64 `json:"p90_seconds"`
		P99 float64 `json:"p99_seconds"`
		Max float64 `json:"max_seconds"`
	} `json:"client"`

	Server map[string]endpointQuantiles `json:"server"`

	SLO []sloResult `json:"slo,omitempty"`
	OK  bool        `json:"ok"`
}

type endpointQuantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
}

type sloResult struct {
	Name   string  `json:"name"`
	Target float64 `json:"target_seconds"`
	Actual float64 `json:"actual_seconds"`
	OK     bool    `json:"ok"`
}

func main() {
	fs := flag.NewFlagSet("errload", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8372", "base URL of the errserve instance")
	rps := fs.Float64("rps", 200, "aggregate request rate to sustain")
	duration := fs.Duration("duration", 10*time.Second, "length of the load run")
	workers := fs.Int("workers", 8, "concurrent request workers")
	sloP50 := fs.Duration("slo-p50", 0, "server-side p50 SLO for /v1/errata (0 disables)")
	sloP99 := fs.Duration("slo-p99", 0, "server-side p99 SLO for /v1/errata (0 disables)")
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	fs.Parse(os.Args[1:])

	rep, err := run(*url, *rps, *duration, *workers, *sloP50, *sloP99)
	if rep != nil {
		enc, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr == nil {
			enc = append(enc, '\n')
			if *out != "" {
				if werr := os.WriteFile(*out, enc, 0o644); werr != nil {
					fmt.Fprintln(os.Stderr, "errload:", werr)
				}
			} else {
				os.Stdout.Write(enc)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "errload:", err)
		os.Exit(1)
	}
	if rep != nil && !rep.OK {
		fmt.Fprintln(os.Stderr, "errload: SLO violated")
		os.Exit(2)
	}
}

func run(baseURL string, rps float64, duration time.Duration, workers int, sloP50, sloP99 time.Duration) (*report, error) {
	if rps <= 0 || workers <= 0 || duration <= 0 {
		return nil, fmt.Errorf("rps, workers and duration must be positive")
	}
	client := &http.Client{Timeout: 30 * time.Second}

	keys, err := harvestKeys(client, baseURL)
	if err != nil {
		return nil, fmt.Errorf("bootstrap against %s: %w", baseURL, err)
	}
	urls := buildTraffic(baseURL, keys)

	before, err := scrape(client, baseURL)
	if err != nil {
		return nil, fmt.Errorf("pre-run metrics scrape: %w", err)
	}

	var (
		next     atomic.Int64 // deterministic round-robin over urls
		requests atomic.Int64
		errors   atomic.Int64
		mu       sync.Mutex
		lats     []float64
	)
	tokens := make(chan struct{}, workers)
	done := make(chan struct{})
	go func() {
		// One token per scheduled request; the closed-loop workers drain
		// them as fast as their in-flight requests allow.
		interval := time.Duration(float64(time.Second) / rps)
		if interval <= 0 {
			interval = time.Microsecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		deadline := time.After(duration)
		for {
			select {
			case <-deadline:
				close(done)
				return
			case <-tick.C:
				select {
				case tokens <- struct{}{}:
				default: // workers saturated; shed the token
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]float64, 0, 1024)
			for {
				select {
				case <-done:
					mu.Lock()
					lats = append(lats, local...)
					mu.Unlock()
					return
				case <-tokens:
				}
				url := urls[int(next.Add(1))%len(urls)]
				start := time.Now()
				resp, err := client.Get(url)
				elapsed := time.Since(start).Seconds()
				requests.Add(1)
				if err != nil {
					errors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 400 {
					errors.Add(1)
					continue
				}
				local = append(local, elapsed)
			}
		}()
	}
	startedAt := time.Now()
	wg.Wait()
	elapsed := time.Since(startedAt)

	after, err := scrape(client, baseURL)
	if err != nil {
		return nil, fmt.Errorf("post-run metrics scrape: %w", err)
	}

	rep := &report{
		URL:      baseURL,
		RPS:      rps,
		Duration: duration.String(),
		Requests: requests.Load(),
		Errors:   errors.Load(),
		Server:   map[string]endpointQuantiles{},
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ActualRPS = float64(rep.Requests) / secs
	}

	sort.Float64s(lats)
	rep.Client.P50 = clientQuantile(lats, 0.50)
	rep.Client.P90 = clientQuantile(lats, 0.90)
	rep.Client.P99 = clientQuantile(lats, 0.99)
	if len(lats) > 0 {
		rep.Client.Max = lats[len(lats)-1]
	}

	for endpoint, h := range after {
		d, err := h.delta(before[endpoint])
		if err != nil {
			return rep, fmt.Errorf("endpoint %q: %w", endpoint, err)
		}
		if d.count == 0 {
			continue
		}
		rep.Server[endpoint] = endpointQuantiles{
			Count: d.count,
			P50:   d.quantile(0.50),
			P99:   d.quantile(0.99),
		}
	}

	rep.OK = rep.Errors == 0
	errata, servedErrata := rep.Server["errata"]
	if !servedErrata {
		rep.OK = false
		return rep, fmt.Errorf("no /v1/errata observations recorded server-side")
	}
	for _, gate := range []struct {
		name   string
		target time.Duration
		actual float64
	}{
		{"errata_p50", sloP50, errata.P50},
		{"errata_p99", sloP99, errata.P99},
	} {
		if gate.target <= 0 {
			continue
		}
		res := sloResult{
			Name:   gate.name,
			Target: gate.target.Seconds(),
			Actual: gate.actual,
			OK:     gate.actual <= gate.target.Seconds(),
		}
		rep.SLO = append(rep.SLO, res)
		if !res.OK {
			rep.OK = false
		}
	}
	return rep, nil
}

// harvestKeys pulls dedup keys from a bootstrap query so the traffic
// mix can include point lookups; an empty result just means no
// point-lookup traffic.
func harvestKeys(client *http.Client, baseURL string) ([]string, error) {
	resp, err := client.Get(baseURL + "/v1/errata?limit=50")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("bootstrap query: status %d", resp.StatusCode)
	}
	var body struct {
		Errata []struct {
			Key string `json:"key"`
		} `json:"errata"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	var keys []string
	seen := map[string]bool{}
	for _, e := range body.Errata {
		if e.Key != "" && !seen[e.Key] {
			seen[e.Key] = true
			keys = append(keys, e.Key)
		}
	}
	return keys, nil
}

// buildTraffic interleaves the deterministic request mix: roughly 60%
// filtered queries, 30% point lookups (when keys exist), 10% stats.
func buildTraffic(baseURL string, keys []string) []string {
	var urls []string
	for i, q := range queryMix {
		urls = append(urls, baseURL+q)
		if len(keys) > 0 {
			urls = append(urls, baseURL+"/v1/errata/"+keys[i%len(keys)])
		}
		if i%3 == 0 {
			urls = append(urls, baseURL+"/v1/stats")
		}
	}
	return urls
}

// scrape fetches /metrics and extracts the per-endpoint request
// duration histograms.
func scrape(client *http.Client, baseURL string) (map[string]*promHist, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	return parseHistograms(resp.Body, durationFamily, "endpoint")
}
