// Command errgen generates the synthetic errata corpus and writes the
// specification-update documents as text files — the stand-in for
// downloading the vendor PDFs.
//
// Usage:
//
//	errgen [-seed N] [-dir corpus/] [-truth truth.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/specdoc"
	"repro/internal/store"

	// Wire the built-in rule pack and corpus profile as the defaults.
	_ "repro/plugins/defaults"
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed")
	dir := flag.String("dir", "corpus", "output directory for the documents")
	truth := flag.String("truth", "", "optional path for the ground-truth database JSON")
	flag.Parse()

	gt, err := corpus.Generate(*seed)
	if err != nil {
		fatal(err)
	}
	dup := make(map[string]string)
	for _, fe := range gt.Inventory.FieldErrors {
		if fe.Kind == "duplicate" {
			dup[fe.Ref] = fe.Field
		}
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{DuplicateFields: dup})

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	total := 0
	for key, text := range texts {
		path := filepath.Join(*dir, key+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		total += len(text)
	}
	fmt.Printf("wrote %d documents (%d bytes) to %s\n", len(texts), total, *dir)

	if *truth != "" {
		if err := store.Save(gt.DB, *truth); err != nil {
			fatal(err)
		}
		fmt.Printf("ground truth saved to %s\n", *truth)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "errgen:", err)
	os.Exit(1)
}
