// Command errserve serves a RemembERR errata database over HTTP.
//
// Usage:
//
//	errserve [-db FILE | -seed N] [-addr :8372] [-cache N] [-timeout D] [-pprof]
//
// The database is either loaded from a previously saved JSON file
// (".gz" supported, see 'rememberr build') or built from the synthetic
// corpus with the given seed. The server answers JSON on:
//
//	GET /v1/errata        filtered queries (?vendor=Intel&category=...)
//	GET /v1/errata/{key}  all occurrences of one deduplicated erratum
//	GET /v1/stats         corpus statistics
//	GET /v1/metrics.json  JSON snapshot of the server's instruments
//	GET /healthz          liveness probe
//	GET /metrics          Prometheus text exposition
//
// Unversioned /errata, /errata/{key} and /stats answer 308 redirects
// to the /v1 paths. One obs registry is shared between the build
// pipeline and the server, so a post-build scrape of /metrics includes
// build-stage timings and classifier counters alongside the HTTP
// metrics. -pprof additionally mounts net/http/pprof on /debug/pprof/.
//
// It shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	rememberr "repro"
	"repro/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("errserve", flag.ExitOnError)
	addr := fs.String("addr", ":8372", "listen address")
	dbFile := fs.String("db", "", "load a saved database JSON instead of building")
	seed := fs.Int64("seed", 1, "corpus generator seed (when building)")
	par := fs.Int("parallelism", 0, "pipeline worker goroutines (0 = all CPUs, 1 = sequential)")
	cacheSize := fs.Int("cache", 256, "query result cache capacity (negative disables)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request handler timeout")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof on /debug/pprof/")
	fs.Parse(os.Args[1:])

	if err := run(*addr, *dbFile, *seed, *par, *cacheSize, *timeout, *enablePprof); err != nil {
		fmt.Fprintln(os.Stderr, "errserve:", err)
		os.Exit(1)
	}
}

func run(addr, dbFile string, seed int64, par, cacheSize int, timeout time.Duration, enablePprof bool) error {
	reg := rememberr.NewRegistry()
	var db *rememberr.Database
	var err error
	if dbFile != "" {
		db, err = rememberr.Load(dbFile)
	} else {
		db, _, err = rememberr.Build(
			rememberr.WithSeed(seed),
			rememberr.WithParallelism(par),
			rememberr.WithObservability(reg),
		)
	}
	if err != nil {
		return err
	}

	srv := serve.New(db.Core(), serve.Options{
		CacheSize:       cacheSize,
		RequestTimeout:  timeout,
		Observability:   reg,
		EnableProfiling: enablePprof,
	})
	st := db.Stats()
	fmt.Printf("serving %d errata (%d unique) on %s\n", st.Total, st.Unique, addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Serve(ctx, addr)
}
