// Command errserve serves a RemembERR errata database over HTTP.
//
// Usage:
//
//	errserve [-db FILE | -seed N] [-addr :8372] [-cache N] [-cache-dir D] [-timeout D] [-shards N] [-spool D] [-mmap=false] [-pprof]
//
// The database is either loaded from a previously saved store file
// (".gz" supported, see 'rememberr build') or built from the synthetic
// corpus with the given seed. Saved files in FormatVersion 2 (see
// 'rememberr build -format=v2' and 'rememberr convert') start through
// the zero-decode fast path: the validated file bytes back the
// database directly, index postings load from the file's arrays, and
// per-erratum response fragments come from the fragment region, so
// startup skips the JSON parse, the index build and all hot-path
// marshaling. By default the v2 file is memory-mapped rather than read
// into the heap (-mmap=false opts out): record and fragment bytes stay
// disk-resident and page in on demand, so a corpus larger than RAM
// serves fine, and reloads swap mappings with zero downtime — the old
// mapping unmaps only after the last in-flight request on it finishes.
// With -cache-dir the build goes through
// the content-addressed pipeline cache, so restarts and reloads replay
// unchanged stages instead of recomputing them. With -shards N the
// errata space is partitioned by deduplicated-key hash into N shards
// and every query is answered by concurrent scatter-gather with a
// deterministic merge — responses are byte-identical to the
// single-index server at any shard count. The server answers JSON on:
//
//	GET  /v1/errata        filtered queries (?vendor=Intel&category=...)
//	GET  /v1/errata/{key}  all occurrences of one deduplicated erratum
//	GET  /v1/stats         corpus statistics
//	GET  /v1/metrics.json  JSON snapshot of the server's instruments
//	POST /v1/admin/reload  rebuild/reload the database and swap it in
//	POST /v1/admin/ingest  ingest one specification-update document
//	GET  /healthz          liveness probe
//	GET  /metrics          Prometheus text exposition
//
// Unversioned /errata, /errata/{key} and /stats answer 308 redirects
// to the /v1 paths. One obs registry is shared between the build
// pipeline and the server, so a post-build scrape of /metrics includes
// build-stage timings and classifier counters alongside the HTTP
// metrics. -pprof additionally mounts net/http/pprof on /debug/pprof/.
//
// # Streaming ingest
//
// POST /v1/admin/ingest accepts one specification-update document as
// the request body, parses, classifies and deduplicates it against the
// live corpus, merges it into the inverted index as a delta
// (internal/ingest), and swaps the new snapshot in with zero downtime;
// the response reports the new generation. -spool D additionally
// watches directory D: files dropped there (write elsewhere, then
// rename in — or rely on the trailing "END OF DOCUMENT" completeness
// check) are ingested the same way and moved to D/done or D/failed.
// -spool-interval tunes the poll period. With -cache-dir the
// per-document parse+classify work is memoized in the same
// content-addressed cache the build uses, so replaying a spool after a
// restart is cheap.
//
// SIGHUP triggers the same zero-downtime reload as POST
// /v1/admin/reload: the database is rebuilt (or re-read from -db) in
// the background and atomically swapped in; in-flight requests keep
// the snapshot they started with. A reload resets the ingest state to
// the freshly produced database (previously ingested documents not in
// the rebuilt source are dropped). It shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	rememberr "repro"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	fs := flag.NewFlagSet("errserve", flag.ExitOnError)
	addr := fs.String("addr", ":8372", "listen address")
	dbFile := fs.String("db", "", "load a saved database JSON instead of building")
	seed := fs.Int64("seed", 1, "corpus generator seed (when building)")
	par := fs.Int("parallelism", 0, "pipeline worker goroutines (0 = all CPUs, 1 = sequential)")
	cacheSize := fs.Int("cache", 256, "query result cache capacity (negative disables)")
	cacheDir := fs.String("cache-dir", "", "pipeline artifact cache directory (incremental rebuilds)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request handler timeout")
	shards := fs.Int("shards", 0, "scatter-gather shard count (0 = single index)")
	spool := fs.String("spool", "", "spool directory to watch for arriving documents")
	spoolInterval := fs.Duration("spool-interval", time.Second, "spool poll period")
	useMmap := fs.Bool("mmap", true, "serve FormatVersion 2 store files from a memory mapping (larger-than-RAM corpora)")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof on /debug/pprof/")
	fs.Parse(os.Args[1:])

	if err := run(*addr, *dbFile, *seed, *par, *cacheSize, *shards, *cacheDir, *spool, *spoolInterval, *timeout, *useMmap, *enablePprof); err != nil {
		fmt.Fprintln(os.Stderr, "errserve:", err)
		os.Exit(1)
	}
}

func run(addr, dbFile string, seed int64, par, cacheSize, shards int, cacheDir, spool string, spoolInterval, timeout time.Duration, useMmap, enablePprof bool) error {
	reg := rememberr.NewRegistry()

	// build produces a fresh *core.Database from the corpus seed; it
	// backs the initial load, POST /v1/admin/reload and SIGHUP when no
	// -db file is given, and a rebuild with -cache-dir replays every
	// unchanged pipeline stage.
	build := func(context.Context) (*core.Database, error) {
		opts := []rememberr.Option{
			rememberr.WithSeed(seed),
			rememberr.WithParallelism(par),
			rememberr.WithObservability(reg),
		}
		if cacheDir != "" {
			opts = append(opts, rememberr.WithCache(cacheDir))
		}
		db, _, err := rememberr.Build(opts...)
		if err != nil {
			return nil, err
		}
		return db.Core(), nil
	}

	// openStore opens -db through the unified store entry point, which
	// sniffs the format itself: FormatVersion 2 files take the
	// zero-decode fast path (the validated file bytes back the
	// database, index postings load from the file's arrays, response
	// fragments come from the fragment region) and are memory-mapped
	// unless -mmap=false; v1 JSON and ".gz" files decode from the heap.
	openStore := func() (store.Reader, error) {
		var opts []store.OpenOption
		if !useMmap {
			opts = append(opts, store.WithMmap(false))
		}
		return store.Open(dbFile, opts...)
	}

	var rd store.Reader
	var db *core.Database
	if dbFile != "" {
		var err error
		if rd, err = openStore(); err != nil {
			return err
		}
		// The ingester needs the materialized corpus; StoreV2 memoizes
		// it, so the server's snapshot shares these exact pointers.
		if db, err = rd.Database(); err != nil {
			rd.Close()
			return err
		}
	} else {
		var err error
		if db, err = build(context.Background()); err != nil {
			return err
		}
	}

	// The ingester maintains the live corpus fed by /v1/admin/ingest and
	// the spool watcher. ingestMu serializes each Apply with its
	// SwapDelta so two concurrent ingests cannot install their snapshots
	// in the wrong order, and guards ingester replacement on reload.
	newIngester := func(db *core.Database) *ingest.Ingester {
		iopts := ingest.Options{Parallelism: par, Observability: reg}
		if cacheDir != "" {
			if c, err := pipeline.NewDiskCache(cacheDir); err != nil {
				fmt.Fprintln(os.Stderr, "errserve: ingest cache disabled:", err)
			} else {
				iopts.Cache = c
			}
		}
		return ingest.NewFrom(db, iopts)
	}
	var ingestMu sync.Mutex
	ing := newIngester(db)

	var srv *serve.Server
	doIngest := func(_ context.Context, text string) (serve.IngestSummary, error) {
		ingestMu.Lock()
		defer ingestMu.Unlock()
		res, err := ing.Apply([]string{text})
		if err != nil {
			return serve.IngestSummary{}, err
		}
		sum := serve.IngestSummary{
			Documents: res.Docs,
			Errata:    res.Errata,
			Skipped:   res.Skipped,
		}
		if res.Changed {
			sum.Generation = srv.SwapDelta(res.DB)
		} else {
			sum.Generation = srv.Generation()
		}
		return sum, nil
	}

	// A reload resets the ingest state to the freshly produced database:
	// the rebuilt source is authoritative, and documents ingested into
	// the previous corpus but absent from it are dropped. With -db the
	// reload reopens the file (picking up a replaced store) and hands
	// the reader to the server, which closes it after installing the
	// snapshot — mmap regions stay alive exactly as long as snapshots
	// reference them.
	sopts := serve.Options{
		CacheSize:       cacheSize,
		RequestTimeout:  timeout,
		Shards:          shards,
		Observability:   reg,
		EnableProfiling: enablePprof,
		Ingest:          doIngest,
	}
	if dbFile != "" {
		sopts.ReloadSource = func(context.Context) (store.Reader, error) {
			r, err := openStore()
			if err != nil {
				return nil, err
			}
			db, err := r.Database()
			if err != nil {
				r.Close()
				return nil, err
			}
			ingestMu.Lock()
			ing = newIngester(db)
			ingestMu.Unlock()
			return r, nil
		}
	} else {
		sopts.Reloader = func(ctx context.Context) (*core.Database, error) {
			db, err := build(ctx)
			if err != nil {
				return nil, err
			}
			ingestMu.Lock()
			ing = newIngester(db)
			ingestMu.Unlock()
			return db, nil
		}
	}
	var err error
	if rd != nil {
		srv, err = serve.New(serve.WithStore(rd), sopts)
	} else {
		srv, err = serve.New(serve.WithDatabase(db), sopts)
	}
	if err != nil {
		return err
	}
	format := ""
	if rd != nil && rd.Format() == store.FormatVersion2 {
		format = " from FormatVersion 2 store"
		if rd.Mapped() {
			format = " from mmapped FormatVersion 2 store"
		}
	}
	if rd != nil {
		// The snapshot holds its own region reference now; dropping the
		// opener's ties the mapping's lifetime to the snapshots using it.
		if err := rd.Close(); err != nil {
			return err
		}
	}
	st := srv.Stats()
	if shards > 0 {
		fmt.Printf("serving %d errata (%d unique) on %s across %d shards%s\n", st.Total, st.Unique, addr, shards, format)
	} else {
		fmt.Printf("serving %d errata (%d unique) on %s%s\n", st.Total, st.Unique, addr, format)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if spool != "" {
		w := &ingest.Watcher{
			Dir:      spool,
			Interval: spoolInterval,
			Apply: func(ctx context.Context, _ string, text string) error {
				_, err := doIngest(ctx, text)
				return err
			},
			Observability: reg,
			Log: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		}
		fmt.Printf("watching spool %s (every %s)\n", spool, spoolInterval)
		go func() {
			if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "errserve: spool:", err)
			}
		}()
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				gen, err := srv.Reload(ctx)
				if err != nil {
					fmt.Fprintln(os.Stderr, "errserve: SIGHUP reload:", err)
					continue
				}
				fmt.Printf("reloaded database (generation %d)\n", gen)
			}
		}
	}()

	return srv.Serve(ctx, addr)
}
