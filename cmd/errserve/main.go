// Command errserve serves a RemembERR errata database over HTTP.
//
// Usage:
//
//	errserve [-db FILE | -seed N] [-addr :8372] [-cache N] [-cache-dir D] [-timeout D] [-shards N] [-pprof]
//
// The database is either loaded from a previously saved JSON file
// (".gz" supported, see 'rememberr build') or built from the synthetic
// corpus with the given seed. With -cache-dir the build goes through
// the content-addressed pipeline cache, so restarts and reloads replay
// unchanged stages instead of recomputing them. With -shards N the
// errata space is partitioned by deduplicated-key hash into N shards
// and every query is answered by concurrent scatter-gather with a
// deterministic merge — responses are byte-identical to the
// single-index server at any shard count. The server answers JSON on:
//
//	GET  /v1/errata        filtered queries (?vendor=Intel&category=...)
//	GET  /v1/errata/{key}  all occurrences of one deduplicated erratum
//	GET  /v1/stats         corpus statistics
//	GET  /v1/metrics.json  JSON snapshot of the server's instruments
//	POST /v1/admin/reload  rebuild/reload the database and swap it in
//	GET  /healthz          liveness probe
//	GET  /metrics          Prometheus text exposition
//
// Unversioned /errata, /errata/{key} and /stats answer 308 redirects
// to the /v1 paths. One obs registry is shared between the build
// pipeline and the server, so a post-build scrape of /metrics includes
// build-stage timings and classifier counters alongside the HTTP
// metrics. -pprof additionally mounts net/http/pprof on /debug/pprof/.
//
// SIGHUP triggers the same zero-downtime reload as POST
// /v1/admin/reload: the database is rebuilt (or re-read from -db) in
// the background and atomically swapped in; in-flight requests keep
// the snapshot they started with. It shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	rememberr "repro"
	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("errserve", flag.ExitOnError)
	addr := fs.String("addr", ":8372", "listen address")
	dbFile := fs.String("db", "", "load a saved database JSON instead of building")
	seed := fs.Int64("seed", 1, "corpus generator seed (when building)")
	par := fs.Int("parallelism", 0, "pipeline worker goroutines (0 = all CPUs, 1 = sequential)")
	cacheSize := fs.Int("cache", 256, "query result cache capacity (negative disables)")
	cacheDir := fs.String("cache-dir", "", "pipeline artifact cache directory (incremental rebuilds)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request handler timeout")
	shards := fs.Int("shards", 0, "scatter-gather shard count (0 = single index)")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof on /debug/pprof/")
	fs.Parse(os.Args[1:])

	if err := run(*addr, *dbFile, *seed, *par, *cacheSize, *shards, *cacheDir, *timeout, *enablePprof); err != nil {
		fmt.Fprintln(os.Stderr, "errserve:", err)
		os.Exit(1)
	}
}

func run(addr, dbFile string, seed int64, par, cacheSize, shards int, cacheDir string, timeout time.Duration, enablePprof bool) error {
	reg := rememberr.NewRegistry()

	// source produces a fresh *core.Database: from the saved file when
	// -db is given, otherwise by building from the corpus seed. The
	// same function backs the initial load, POST /v1/admin/reload and
	// SIGHUP, so a reload picks up an updated -db file, and a rebuild
	// with -cache-dir replays every unchanged pipeline stage.
	source := func(context.Context) (*core.Database, error) {
		if dbFile != "" {
			db, err := rememberr.Load(dbFile)
			if err != nil {
				return nil, err
			}
			return db.Core(), nil
		}
		opts := []rememberr.Option{
			rememberr.WithSeed(seed),
			rememberr.WithParallelism(par),
			rememberr.WithObservability(reg),
		}
		if cacheDir != "" {
			opts = append(opts, rememberr.WithCache(cacheDir))
		}
		db, _, err := rememberr.Build(opts...)
		if err != nil {
			return nil, err
		}
		return db.Core(), nil
	}

	db, err := source(context.Background())
	if err != nil {
		return err
	}

	srv := serve.New(db, serve.Options{
		CacheSize:       cacheSize,
		RequestTimeout:  timeout,
		Shards:          shards,
		Observability:   reg,
		EnableProfiling: enablePprof,
		Reloader:        source,
	})
	st := db.ComputeStats()
	if shards > 0 {
		fmt.Printf("serving %d errata (%d unique) on %s across %d shards\n", st.Total, st.Unique, addr, shards)
	} else {
		fmt.Printf("serving %d errata (%d unique) on %s\n", st.Total, st.Unique, addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				gen, err := srv.Reload(ctx)
				if err != nil {
					fmt.Fprintln(os.Stderr, "errserve: SIGHUP reload:", err)
					continue
				}
				fmt.Printf("reloaded database (generation %d)\n", gen)
			}
		}
	}()

	return srv.Serve(ctx, addr)
}
